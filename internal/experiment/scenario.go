package experiment

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/hw"
)

// This file is the scenario registry: named descriptor transforms that
// turn a registered workload into the same workload on degraded
// hardware. A scenario never adds a rig or a boot path — it rewrites
// the WorkloadDesc (today: wrapping Build to arm a hw.Injector on the
// rig's bus), and everything downstream (machine assembly, both
// backends, both front ends, campaign routing, tables) is untouched.
// Campaign specs cross their driver list with a scenario list to form
// a matrix; each cell's injector is reseeded per boot from the task's
// FaultSeed, so fault patterns are a pure function of the task and the
// differential oracle's observables stay byte-identical across
// backends, front ends, shardings and resumes.

// ScenarioDesc declares one registered scenario: a name, CLI help text,
// and the transform that rewrites a workload descriptor. Transform
// receives the parameter text after the scenario name's ":" ("" when
// absent) and must reject parameters it cannot parse — CheckScenario
// relies on that to validate spec scenario lists before any rig exists.
type ScenarioDesc struct {
	Name      string
	Help      string
	Transform func(param string, d WorkloadDesc) (WorkloadDesc, error)
}

var scenarioRegistry = struct {
	mu     sync.RWMutex
	order  []*ScenarioDesc
	byName map[string]*ScenarioDesc
}{
	byName: make(map[string]*ScenarioDesc),
}

// RegisterScenario adds a scenario to the registry, rejecting empty
// names, names containing the ":" parameter separator, missing
// transforms and duplicates.
func RegisterScenario(d ScenarioDesc) error {
	if d.Name == "" {
		return fmt.Errorf("register scenario: empty name")
	}
	if strings.ContainsRune(d.Name, ':') {
		return fmt.Errorf("register scenario %s: name may not contain ':'", d.Name)
	}
	if d.Transform == nil {
		return fmt.Errorf("register scenario %s: Transform is required", d.Name)
	}
	scenarioRegistry.mu.Lock()
	defer scenarioRegistry.mu.Unlock()
	if _, ok := scenarioRegistry.byName[d.Name]; ok {
		return fmt.Errorf("register scenario %s: already registered", d.Name)
	}
	desc := d
	scenarioRegistry.byName[d.Name] = &desc
	scenarioRegistry.order = append(scenarioRegistry.order, &desc)
	return nil
}

// unregisterScenario removes a scenario; like unregisterWorkload it
// exists only so tests can clean up synthetic registrations.
func unregisterScenario(name string) {
	scenarioRegistry.mu.Lock()
	defer scenarioRegistry.mu.Unlock()
	d, ok := scenarioRegistry.byName[name]
	if !ok {
		return
	}
	delete(scenarioRegistry.byName, name)
	for i, o := range scenarioRegistry.order {
		if o == d {
			scenarioRegistry.order = append(scenarioRegistry.order[:i], scenarioRegistry.order[i+1:]...)
			break
		}
	}
}

// Scenarios returns the registered scenarios in registration order.
func Scenarios() []*ScenarioDesc {
	scenarioRegistry.mu.RLock()
	defer scenarioRegistry.mu.RUnlock()
	out := make([]*ScenarioDesc, len(scenarioRegistry.order))
	copy(out, scenarioRegistry.order)
	return out
}

// ApplyScenario rewrites a workload descriptor for the named scenario.
// The name splits at the first ":" into a registered scenario and its
// parameter ("flaky-bus:10" is the flaky-bus scenario at 10%).
func ApplyScenario(name string, d WorkloadDesc) (WorkloadDesc, error) {
	if err := scenarioInit(); err != nil {
		return WorkloadDesc{}, err
	}
	base, param := name, ""
	if i := strings.IndexByte(name, ':'); i >= 0 {
		base, param = name[:i], name[i+1:]
	}
	scenarioRegistry.mu.RLock()
	sc := scenarioRegistry.byName[base]
	scenarioRegistry.mu.RUnlock()
	if sc == nil {
		var known []string
		for _, s := range Scenarios() {
			known = append(known, s.Name)
		}
		sort.Strings(known)
		return WorkloadDesc{}, fmt.Errorf("unknown scenario %q (known: %v)", base, known)
	}
	out, err := sc.Transform(param, d)
	if err != nil {
		return WorkloadDesc{}, fmt.Errorf("scenario %s: %w", name, err)
	}
	return out, nil
}

// CheckScenario validates a scenario name (including its parameter)
// without building anything: the transform runs against a throwaway
// descriptor. Expand calls it so a misspelled cell fails the campaign
// before any rig is assembled.
func CheckScenario(name string) error {
	_, err := ApplyScenario(name, WorkloadDesc{})
	return err
}

// withInjector wraps a descriptor's Build hook to arm a fault injector
// on the freshly assembled rig — the one shared mechanism behind every
// hardware-degradation scenario. The injector hangs off both the bus
// (the data path) and the rig (so Boot can reseed it per task).
func withInjector(cfg hw.InjectorConfig, d WorkloadDesc) WorkloadDesc {
	prev := d.Build
	d.Build = func(r *Rig) (any, error) {
		var dev any
		if prev != nil {
			var err error
			dev, err = prev(r)
			if err != nil {
				return nil, err
			}
		}
		inj := hw.NewInjector(cfg, r.Clock)
		r.Bus.SetInjector(inj)
		r.Injector = inj
		return dev, nil
	}
	return d
}

// scenarioPct parses an integer parameter with bounds, for the builtin
// scenarios' ":n" suffixes.
func scenarioParam(param string, def, min, max int, unit string) (int, error) {
	if param == "" {
		return def, nil
	}
	n, err := strconv.Atoi(param)
	if err != nil {
		return 0, fmt.Errorf("bad parameter %q: want an integer %s", param, unit)
	}
	if n < min || n > max {
		return 0, fmt.Errorf("parameter %d out of range [%d, %d] %s", n, min, max, unit)
	}
	return n, nil
}

func init() {
	for _, d := range []ScenarioDesc{
		{
			Name: "pristine",
			Help: "unmodified hardware — the classic evaluation cell (no parameter)",
			Transform: func(param string, d WorkloadDesc) (WorkloadDesc, error) {
				if param != "" {
					return WorkloadDesc{}, fmt.Errorf("pristine takes no parameter, got %q", param)
				}
				return d, nil
			},
		},
		{
			Name: "flaky-bus",
			Help: "seeded unreliable port I/O: each mapped read has pct% odds (default 2, max 33) of a dropped, duplicated or stale result",
			Transform: func(param string, d WorkloadDesc) (WorkloadDesc, error) {
				pct, err := scenarioParam(param, 2, 1, 33, "percent")
				if err != nil {
					return WorkloadDesc{}, err
				}
				rate := uint32(pct) * 100 // percent -> per-myriad
				return withInjector(hw.InjectorConfig{
					DropPerMyriad:  rate,
					DupPerMyriad:   rate,
					StalePerMyriad: rate,
				}, d), nil
			},
		},
		{
			Name: "timing",
			Help: "slow silicon: every mapped port access charges n extra clock ticks (default 8, max 4096), squeezing polling loops against their budgets",
			Transform: func(param string, d WorkloadDesc) (WorkloadDesc, error) {
				ticks, err := scenarioParam(param, 8, 1, 4096, "ticks")
				if err != nil {
					return WorkloadDesc{}, err
				}
				return withInjector(hw.InjectorConfig{
					LatencyTicks: uint64(ticks),
				}, d), nil
			},
		},
	} {
		if err := RegisterScenario(d); err != nil {
			scenarioRegistry.mu.Lock()
			if scenarioInitErr == nil {
				scenarioInitErr = fmt.Errorf("builtin scenario registry: %w", err)
			}
			scenarioRegistry.mu.Unlock()
		}
	}
}

// scenarioInitErr records a builtin scenario registration failure;
// ApplyScenario surfaces it so a broken registry fails campaigns
// cleanly instead of reporting every scenario unknown.
var scenarioInitErr error

func scenarioInit() error {
	scenarioRegistry.mu.RLock()
	defer scenarioRegistry.mu.RUnlock()
	return scenarioInitErr
}
