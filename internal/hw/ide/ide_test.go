package ide_test

import (
	"encoding/binary"
	"testing"

	"repro/internal/hw"
	"repro/internal/hw/ide"
)

// rig assembles a controller with a small disk whose sector n is filled
// with byte n.
type rig struct {
	clock *hw.Clock
	bus   *hw.Bus
	ctrl  *ide.Controller
	disk  *ide.Disk
}

func newRig(t *testing.T, sectors int) *rig {
	t.Helper()
	img := make([][]byte, sectors)
	for i := range img {
		img[i] = make([]byte, ide.SectorSize)
		for j := range img[i] {
			img[i][j] = byte(i)
		}
	}
	clock := &hw.Clock{}
	bus := hw.NewBus()
	disk := ide.NewDisk("TESTDISK", img)
	ctrl := ide.NewController(clock, disk)
	if err := bus.Map(0x1f0, 8, ctrl); err != nil {
		t.Fatal(err)
	}
	if err := bus.Map(0x3f6, 1, ctrl.ControlBlock()); err != nil {
		t.Fatal(err)
	}
	return &rig{clock: clock, bus: bus, ctrl: ctrl, disk: disk}
}

func (r *rig) out8(t *testing.T, port hw.Port, v uint8) {
	t.Helper()
	if err := r.bus.Out8(port, v); err != nil {
		t.Fatalf("out8 %#x: %v", port, err)
	}
}

func (r *rig) in8(t *testing.T, port hw.Port) uint8 {
	t.Helper()
	v, err := r.bus.In8(port)
	if err != nil {
		t.Fatalf("in8 %#x: %v", port, err)
	}
	return v
}

// status polls until BSY clears, ticking the clock, and returns the status.
func (r *rig) waitNotBusy(t *testing.T) uint8 {
	t.Helper()
	for i := 0; i < 10_000; i++ {
		s := r.in8(t, 0x1f7)
		if s&ide.StatusBusy == 0 {
			return s
		}
		r.clock.Tick(1)
	}
	t.Fatal("drive stuck busy")
	return 0
}

func (r *rig) readDataSector(t *testing.T) []byte {
	t.Helper()
	buf := make([]byte, ide.SectorSize)
	for i := 0; i < 256; i++ {
		w, err := r.bus.In16(0x1f0)
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint16(buf[2*i:], w)
	}
	return buf
}

func TestResetSignature(t *testing.T) {
	r := newRig(t, 8)
	r.out8(t, 0x3f6, 0x0c) // SRST | bit3
	r.out8(t, 0x3f6, 0x08) // release
	s := r.waitNotBusy(t)
	if s&ide.StatusReady == 0 {
		t.Errorf("not ready after reset: status %#x", s)
	}
	if got := r.in8(t, 0x1f2); got != 1 {
		t.Errorf("sector count signature = %d, want 1", got)
	}
	if got := r.in8(t, 0x1f3); got != 1 {
		t.Errorf("sector number signature = %d, want 1", got)
	}
	if got := r.in8(t, 0x1f1); got != 0x01 {
		t.Errorf("error register after diagnostics = %#x, want 0x01", got)
	}
}

func TestIdentify(t *testing.T) {
	r := newRig(t, 32)
	r.out8(t, 0x1f6, 0xa0) // master
	r.out8(t, 0x1f7, ide.CmdIdentify)
	s := r.waitNotBusy(t)
	if s&ide.StatusDataRequest == 0 {
		t.Fatalf("no DRQ after identify: status %#x", s)
	}
	data := r.readDataSector(t)
	total := binary.LittleEndian.Uint16(data[120:]) // word 60
	if int(total) != 32 {
		t.Errorf("identify total sectors = %d, want 32", total)
	}
	// Model string is byte-swapped ASCII in words 27..46.
	if data[27*2+1] != 'T' { // "TESTDISK" with pairs swapped: "ET..."?
		// byte order: buf[27*2+(0^1)] = model[0] ⇒ buf[55] = 'T'
		t.Errorf("model string byte = %q", data[27*2+1])
	}
	// After 256 words the data phase ends.
	if st := r.in8(t, 0x1f7); st&ide.StatusDataRequest != 0 {
		t.Errorf("DRQ still set after full transfer: %#x", st)
	}
}

func TestReadSectorsLBA(t *testing.T) {
	r := newRig(t, 32)
	r.out8(t, 0x1f6, 0xe0) // master, LBA
	r.out8(t, 0x1f2, 2)    // two sectors
	r.out8(t, 0x1f3, 5)    // LBA 5
	r.out8(t, 0x1f4, 0)
	r.out8(t, 0x1f5, 0)
	r.out8(t, 0x1f7, ide.CmdReadSectors)
	for sector := 0; sector < 2; sector++ {
		s := r.waitNotBusy(t)
		if s&ide.StatusDataRequest == 0 {
			t.Fatalf("no DRQ for sector %d: status %#x", sector, s)
		}
		data := r.readDataSector(t)
		want := byte(5 + sector)
		if data[0] != want || data[511] != want {
			t.Errorf("sector %d content = %d/%d, want %d", sector, data[0], data[511], want)
		}
	}
	if s := r.in8(t, 0x1f7); s&ide.StatusError != 0 {
		t.Errorf("error after read: %#x", s)
	}
}

func TestReadCHS(t *testing.T) {
	r := newRig(t, 64)
	// Geometry is 4 heads × 8 spt. CHS (cyl 1, head 1, sec 3) = LBA
	// (1*4+1)*8+3-1 = 42.
	r.out8(t, 0x1f6, 0xa1) // CHS, head 1
	r.out8(t, 0x1f2, 1)
	r.out8(t, 0x1f3, 3) // sector 3 (1-based)
	r.out8(t, 0x1f4, 1) // cyl low = 1
	r.out8(t, 0x1f5, 0)
	r.out8(t, 0x1f7, ide.CmdReadSectors)
	r.waitNotBusy(t)
	data := r.readDataSector(t)
	if data[0] != 42 {
		t.Errorf("CHS read got sector %d, want 42", data[0])
	}
}

func TestWriteSectors(t *testing.T) {
	r := newRig(t, 16)
	r.out8(t, 0x1f6, 0xe0)
	r.out8(t, 0x1f2, 1)
	r.out8(t, 0x1f3, 9)
	r.out8(t, 0x1f4, 0)
	r.out8(t, 0x1f5, 0)
	r.out8(t, 0x1f7, ide.CmdWriteSectors)
	s := r.in8(t, 0x1f7)
	if s&ide.StatusDataRequest == 0 {
		t.Fatalf("no DRQ for write: %#x", s)
	}
	for i := 0; i < 256; i++ {
		if err := r.bus.Out16(0x1f0, uint16(0x1111*(i%4))); err != nil {
			t.Fatal(err)
		}
	}
	r.waitNotBusy(t)
	if r.disk.Sectors[9][2] != 0x11 {
		t.Errorf("disk sector 9 not written: % x", r.disk.Sectors[9][:4])
	}
}

func TestOutOfRangeLBAFails(t *testing.T) {
	r := newRig(t, 8)
	r.out8(t, 0x1f6, 0xe0)
	r.out8(t, 0x1f2, 1)
	r.out8(t, 0x1f3, 200) // beyond the 8-sector disk
	r.out8(t, 0x1f4, 0)
	r.out8(t, 0x1f5, 0)
	r.out8(t, 0x1f7, ide.CmdReadSectors)
	s := r.in8(t, 0x1f7)
	if s&ide.StatusError == 0 {
		t.Errorf("out-of-range read did not error: %#x", s)
	}
	if e := r.in8(t, 0x1f1); e&ide.ErrIDNotFound == 0 {
		t.Errorf("error register = %#x, want IDNF", e)
	}
}

func TestUnknownCommandAborts(t *testing.T) {
	r := newRig(t, 8)
	r.out8(t, 0x1f7, 0x99)
	s := r.in8(t, 0x1f7)
	if s&ide.StatusError == 0 {
		t.Errorf("unknown command did not abort: %#x", s)
	}
	if e := r.in8(t, 0x1f1); e&ide.ErrAborted == 0 {
		t.Errorf("error register = %#x, want ABRT", e)
	}
}

func TestSlaveAbsent(t *testing.T) {
	r := newRig(t, 8)
	r.out8(t, 0x1f6, 0xb0) // slave select
	if s := r.in8(t, 0x1f7); s != 0 {
		t.Errorf("absent slave status = %#x, want 0", s)
	}
	r.out8(t, 0x1f7, ide.CmdIdentify) // ignored
	r.clock.Tick(500)
	if s := r.in8(t, 0x1f7); s != 0 {
		t.Errorf("absent slave acted on a command: %#x", s)
	}
	// Back to master: alive again.
	r.out8(t, 0x1f6, 0xa0)
	if s := r.in8(t, 0x1f7); s&ide.StatusReady == 0 {
		t.Errorf("master not ready after reselect: %#x", s)
	}
}

func TestDataPortWithoutDRQFloats(t *testing.T) {
	r := newRig(t, 8)
	w, err := r.bus.In16(0x1f0)
	if err != nil {
		t.Fatal(err)
	}
	if w != 0xffff {
		t.Errorf("data read without DRQ = %#x, want 0xffff", w)
	}
	// 8-bit pokes at the 16-bit data port yield garbage, not data.
	if v := r.in8(t, 0x1f0); v != 0xff {
		t.Errorf("8-bit data read = %#x, want 0xff", v)
	}
}

func TestCommandsIgnoredWhileBusy(t *testing.T) {
	r := newRig(t, 8)
	r.out8(t, 0x1f6, 0xe0)
	r.out8(t, 0x1f2, 1)
	r.out8(t, 0x1f3, 1)
	r.out8(t, 0x1f4, 0)
	r.out8(t, 0x1f5, 0)
	r.out8(t, 0x1f7, ide.CmdReadSectors)
	if s := r.in8(t, 0x1f7); s&ide.StatusBusy == 0 {
		t.Fatalf("not busy right after command: %#x", s)
	}
	r.out8(t, 0x1f7, ide.CmdIdentify) // must be ignored
	r.waitNotBusy(t)
	data := r.readDataSector(t)
	if data[0] != 1 {
		t.Errorf("read was pre-empted: sector content %d, want 1", data[0])
	}
}
