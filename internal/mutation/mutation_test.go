package mutation_test

import (
	"testing"
	"testing/quick"

	"repro/internal/mutation"
)

// TestPaperExampleCount reproduces the §3.1 arithmetic: a 2-digit base-10
// number yields 2 deletions + 30 insertions + 18 replacements = 50
// mutants (when digits are distinct and no edit collides).
func TestPaperExampleCount(t *testing.T) {
	edits := mutation.LiteralEdits("50", mutation.AlphabetDecimal)
	var del, ins, repl int
	for _, e := range edits {
		switch e.Kind {
		case mutation.EditDelete:
			del++
		case mutation.EditInsert:
			ins++
		case mutation.EditReplace:
			repl++
		}
	}
	// "55" insertion at position 0 and 1 both give "555" etc., so exact
	// counts hold only for distinct digits. "50" has distinct digits but
	// inserting '5' before or after the existing '5' both give "550";
	// duplicates are removed, so slightly fewer than the paper's upper
	// bound survive.
	if del != 2 {
		t.Errorf("deletions = %d, want 2", del)
	}
	if ins < 25 || ins > 30 {
		t.Errorf("insertions = %d, want close to 30", ins)
	}
	if repl != 18 {
		t.Errorf("replacements = %d, want 18", repl)
	}
}

func TestSingleCharNoDeletion(t *testing.T) {
	for _, e := range mutation.LiteralEdits("7", mutation.AlphabetDecimal) {
		if e.Kind == mutation.EditDelete {
			t.Fatalf("deleted the only character: %+v", e)
		}
	}
}

// TestEditsProperties: no edit reproduces the original, none are
// duplicated, and all stay within the alphabet.
func TestEditsProperties(t *testing.T) {
	prop := func(raw uint32) bool {
		// Build a 1-4 digit decimal string from the seed.
		digits := "0123456789"
		var text []byte
		n := int(raw%4) + 1
		for i := 0; i < n; i++ {
			text = append(text, digits[(raw>>(4*uint(i)))%10])
		}
		edits := mutation.LiteralEdits(string(text), mutation.AlphabetDecimal)
		seen := map[string]bool{string(text): true}
		for _, e := range edits {
			if seen[e.Text] {
				return false
			}
			seen[e.Text] = true
			for i := 0; i < len(e.Text); i++ {
				if e.Text[i] < '0' || e.Text[i] > '9' {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBitPatternAlphabet(t *testing.T) {
	edits := mutation.LiteralEdits("1.0", mutation.AlphabetBitPattern)
	found := map[string]bool{}
	for _, e := range edits {
		found[e.Text] = true
	}
	for _, want := range []string{"1.", "*.0", "1.00", "1*0"} {
		if !found[want] {
			t.Errorf("expected edit %q missing", want)
		}
	}
}

func TestSampleDeterministicAndValid(t *testing.T) {
	a := mutation.Sample(1000, 250, 42)
	b := mutation.Sample(1000, 250, 42)
	c := mutation.Sample(1000, 250, 43)
	if len(a) != 250 {
		t.Fatalf("sample size = %d", len(a))
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if !same {
		t.Error("same seed produced different samples")
	}
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical samples")
	}
	// Sorted, in range, distinct.
	seen := map[int]bool{}
	for i, v := range a {
		if v < 0 || v >= 1000 {
			t.Fatalf("out of range: %d", v)
		}
		if seen[v] {
			t.Fatalf("duplicate index %d", v)
		}
		seen[v] = true
		if i > 0 && a[i-1] >= v {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestSampleWholePopulation(t *testing.T) {
	all := mutation.Sample(10, 100, 1)
	if len(all) != 10 {
		t.Fatalf("oversample size = %d", len(all))
	}
	for i, v := range all {
		if v != i {
			t.Errorf("oversample[%d] = %d", i, v)
		}
	}
}
