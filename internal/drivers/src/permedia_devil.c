/*
 * permedia_devil.c — the Permedia 2 driver re-engineered over Devil stubs.
 *
 * All hardware knowledge lives in the specification: no aperture
 * offsets, no reset-busy bit position, no flag masks. The glue below
 * manipulates typed device variables (ResetBusy, IntFlags, FifoSpace,
 * DmaCount, ...) through generated get_/set_ stubs; the write-1-to-clear
 * protocol of the flag register and the read-only space counter are
 * spec-level facts.
 */

#define INT_DMA      0x01
#define INT_ERROR    0x08
#define INT_VRETRACE 0x10
#define INT_MASK     0x19

#define FIFO_ROOM    32

#define H_TOTAL      100
#define V_TOTAL      64
#define SCREEN_BASE  0
#define STRIDE       640

#define GFX_TIMEOUT  20000

/* Bounded wait for the chip to leave the reset phase. */
static int wait_reset_done(void)
{
    int t;
    //@hw
    for (t = 0; t < GFX_TIMEOUT; t++) {
        if (!get_ResetBusy()) {
            return 0;
        }
    }
    //@endhw
    return 1;
}

/* Bounded wait for an interrupt flag. */
static int wait_flag(int mask)
{
    int t;
    //@hw
    for (t = 0; t < GFX_TIMEOUT; t++) {
        if (get_IntFlags() & mask) {
            return 0;
        }
    }
    //@endhw
    return 1;
}

/* Bounded wait for free space in the input FIFO. */
static int fifo_wait(void)
{
    int t;
    //@hw
    for (t = 0; t < GFX_TIMEOUT; t++) {
        if (get_FifoSpace() != 0) {
            return 0;
        }
    }
    //@endhw
    return 1;
}

/* Bounded wait for the graphics core to consume the whole FIFO. */
static int fifo_drain(void)
{
    int t;
    //@hw
    for (t = 0; t < GFX_TIMEOUT; t++) {
        if (get_FifoSpace() == FIFO_ROOM) {
            return 0;
        }
    }
    //@endhw
    return 1;
}

int gfx_init(void)
{
    //@hw
    set_ResetTrigger(1);
    if (wait_reset_done()) {
        printk("permedia: reset stuck");
        return 1;
    }
    set_ScreenBase(SCREEN_BASE);
    set_Stride(STRIDE);
    set_HTotal(H_TOTAL);
    set_VTotal(V_TOTAL);
    set_VideoEnable(1);
    set_IntEnable(INT_MASK);
    if (wait_flag(INT_VRETRACE)) {
        printk("permedia: no vertical retrace");
        return 1;
    }
    set_IntFlags(INT_VRETRACE);
    //@endhw
    printk("permedia: chip up");
    return 0;
}

/* Feed words render commands into the GP input FIFO under flow control,
 * then wait for the core to consume them all. */
int gfx_render(int words)
{
    int w;
    //@hw
    for (w = 0; w < words; w++) {
        if (fifo_wait()) {
            printk("permedia: fifo stalled");
            return 1;
        }
        set_GpFifoWord(w);
    }
    if (fifo_drain()) {
        printk("permedia: fifo never drained");
        return 1;
    }
    //@endhw
    return 0;
}

/* Run one DMA transfer of count dwords from addr and acknowledge the
 * completion interrupt. */
int gfx_dma(int addr, int count)
{
    //@hw
    set_DmaAddress(addr);
    set_DmaCount(count);
    if (wait_flag(INT_DMA)) {
        printk("permedia: dma timeout");
        return 1;
    }
    set_IntFlags(INT_DMA);
    //@endhw
    return 0;
}
