package campaign_test

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/campaign"
	"repro/internal/obs"
)

// gatherSums totals a collector's samples per family name (histograms
// contribute their observation count).
func gatherSums(col *obs.Collector) map[string]float64 {
	out := make(map[string]float64)
	for _, s := range col.Gather() {
		switch s.Kind {
		case obs.KindHistogram:
			out[s.Name] += float64(s.Count)
		default:
			out[s.Name] += s.Value
		}
	}
	return out
}

// TestMetricsMatchStoreExactly is the concurrency-exactness contract:
// a sharded run on a busy worker pool with dedup in play must end with
// counter totals equal to the store's record counts — no lost or
// double counts. CI runs this package under -race.
func TestMetricsMatchStoreExactly(t *testing.T) {
	col := obs.New()
	store := campaign.NewMemStore()
	spec := dedupSpec()
	spec.Shards = 4
	tracker := campaign.NewStatusTracker()
	sum, err := campaign.Run(spec, &dedupWorkload{}, store, campaign.Options{
		Workers: 8,
		Metrics: campaign.NewMetrics(col),
		Status:  tracker,
	})
	if err != nil {
		t.Fatal(err)
	}

	results := 0
	for _, r := range store.Records() {
		if r.Kind == campaign.KindResult {
			results++
		}
	}
	got := gatherSums(col)
	if int(got[campaign.MetricBoots]) != sum.Ran {
		t.Errorf("%s = %v, want %d", campaign.MetricBoots, got[campaign.MetricBoots], sum.Ran)
	}
	if int(got[campaign.MetricDedup]) != sum.Deduped {
		t.Errorf("%s = %v, want %d", campaign.MetricDedup, got[campaign.MetricDedup], sum.Deduped)
	}
	if int(got[campaign.MetricOutcomes]) != results {
		t.Errorf("%s = %v, want %d (every result record counts once)",
			campaign.MetricOutcomes, got[campaign.MetricOutcomes], results)
	}
	if int(got[campaign.MetricWorkerBoots]) != sum.Ran {
		t.Errorf("%s = %v, want %d", campaign.MetricWorkerBoots, got[campaign.MetricWorkerBoots], sum.Ran)
	}
	if int(got[campaign.MetricSteps]) != sum.Ran {
		t.Errorf("%s count = %v, want %d", campaign.MetricSteps, got[campaign.MetricSteps], sum.Ran)
	}

	// The tracker is the same arithmetic through the other door.
	snap := tracker.Snapshot()
	if snap.Recorded != results || snap.Ran != sum.Ran || snap.Deduped != sum.Deduped {
		t.Errorf("snapshot %d/%d/%d does not match summary %d/%d", snap.Recorded, snap.Ran,
			snap.Deduped, results, sum.Ran)
	}
	if snap.Total != sum.Total {
		t.Errorf("snapshot total = %d, want %d", snap.Total, sum.Total)
	}
	outcomeSum := 0
	for _, n := range snap.Outcomes {
		outcomeSum += n
	}
	if outcomeSum != results {
		t.Errorf("snapshot outcome histogram sums to %d, want %d", outcomeSum, results)
	}
	shardSum := 0
	for _, sh := range snap.Shards {
		shardSum += sh.Recorded
		if sh.Recorded != sh.Planned {
			t.Errorf("shard %d: %d/%d recorded", sh.Shard, sh.Recorded, sh.Planned)
		}
	}
	if shardSum != results {
		t.Errorf("per-shard recorded sums to %d, want %d", shardSum, results)
	}
}

// TestResumeMetricsCountSkips: on resume, already-stored results land
// in the skipped counter and still count as recorded outcomes.
func TestResumeMetricsCountSkips(t *testing.T) {
	store := campaign.NewMemStore()
	if _, err := campaign.Run(spec2(), &fakeWorkload{}, store, campaign.Options{}); err != nil {
		t.Fatal(err)
	}
	col := obs.New()
	tracker := campaign.NewStatusTracker()
	sum, err := campaign.Run(spec2(), &fakeWorkload{}, store, campaign.Options{
		Metrics: campaign.NewMetrics(col),
		Status:  tracker,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := gatherSums(col)
	if int(got[campaign.MetricSkipped]) != sum.Skipped || sum.Skipped != 65 {
		t.Errorf("%s = %v, want %d", campaign.MetricSkipped, got[campaign.MetricSkipped], sum.Skipped)
	}
	if int(got[campaign.MetricOutcomes]) != 65 {
		t.Errorf("outcomes = %v, want 65", got[campaign.MetricOutcomes])
	}
	snap := tracker.Snapshot()
	if snap.Recorded != 65 || snap.Skipped != 65 || snap.Ran != 0 {
		t.Errorf("resume snapshot = %+v", snap)
	}
}

// TestSnapshotFromRecordsMatchesLive: the offline reconstruction of a
// completed store agrees with the live tracker on every count it can
// know.
func TestSnapshotFromRecordsMatchesLive(t *testing.T) {
	store := campaign.NewMemStore()
	tracker := campaign.NewStatusTracker()
	spec := dedupSpec()
	spec.Shards = 2
	if _, err := campaign.Run(spec, &dedupWorkload{}, store, campaign.Options{Status: tracker}); err != nil {
		t.Fatal(err)
	}
	live := tracker.Snapshot()
	off := campaign.SnapshotFromRecords(store.Records())
	if off.Live {
		t.Error("offline snapshot claims to be live")
	}
	if off.Name != "dd" || off.Fingerprint != spec.Fingerprint() {
		t.Errorf("offline identity = %q/%q", off.Name, off.Fingerprint)
	}
	if off.Total != live.Total || off.Recorded != live.Recorded ||
		off.Ran != live.Ran || off.Deduped != live.Deduped {
		t.Errorf("offline %d/%d/%d/%d differs from live %d/%d/%d/%d",
			off.Total, off.Recorded, off.Ran, off.Deduped,
			live.Total, live.Recorded, live.Ran, live.Deduped)
	}
	if !reflect.DeepEqual(off.Outcomes, live.Outcomes) {
		t.Errorf("outcome histograms differ:\noffline %v\nlive    %v", off.Outcomes, live.Outcomes)
	}
	offShards := make(map[int]int)
	for _, sh := range off.Shards {
		offShards[sh.Shard] = sh.Recorded
	}
	for _, sh := range live.Shards {
		if offShards[sh.Shard] != sh.Recorded {
			t.Errorf("shard %d: offline %d, live %d", sh.Shard, offShards[sh.Shard], sh.Recorded)
		}
	}
}

// TestInterruptStopsFeedAndResumes: closing Options.Interrupt stops
// the campaign early with ErrInterrupted, the store stays consistent,
// and a plain re-run finishes the remainder to the same aggregate as
// an uninterrupted run.
func TestInterruptStopsFeedAndResumes(t *testing.T) {
	store := campaign.NewMemStore()
	interrupt := make(chan struct{})
	var once sync.Once
	sum, err := campaign.Run(spec2(), &fakeWorkload{}, store, campaign.Options{
		Workers:   1,
		Interrupt: interrupt,
		Progress: func(done, total int) {
			once.Do(func() { close(interrupt) })
		},
	})
	if !errors.Is(err, campaign.ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if sum.Ran == 0 || sum.Ran >= sum.Total {
		t.Fatalf("interrupted run booted %d of %d", sum.Ran, sum.Total)
	}

	resumed, err := campaign.Run(spec2(), &fakeWorkload{}, store, campaign.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Skipped != sum.Ran || resumed.Ran+resumed.Skipped != resumed.Total {
		t.Errorf("resume summary %+v after interrupting %d boots", resumed, sum.Ran)
	}
	full := campaign.NewMemStore()
	if _, err := campaign.Run(spec2(), &fakeWorkload{}, full, campaign.Options{}); err != nil {
		t.Fatal(err)
	}
	want, _, _ := campaign.Aggregate(full.Records())
	got, _, _ := campaign.Aggregate(store.Records())
	if !reflect.DeepEqual(got, want) {
		t.Error("interrupted+resumed aggregate differs from a clean run")
	}
}

// TestSignalFlushBeatsCrash is the graceful-interruption contract: at
// a large FlushEvery, a signal-style stop (interrupt, then Flush, as
// the CLI does) persists everything recorded so far, while a crash at
// the same point loses the unflushed tail — and both converge on
// resume.
func TestSignalFlushBeatsCrash(t *testing.T) {
	spec := spec2()
	spec.FlushEvery = 1000 // never checkpoint on its own

	runInterrupted := func(path string) (*campaign.FileStore, int) {
		t.Helper()
		st, err := campaign.OpenFile(path)
		if err != nil {
			t.Fatal(err)
		}
		interrupt := make(chan struct{})
		var once sync.Once
		_, err = campaign.Run(spec, &fakeWorkload{}, st, campaign.Options{
			Workers:   1,
			Interrupt: interrupt,
			Progress: func(done, total int) {
				if done >= 10 {
					once.Do(func() { close(interrupt) })
				}
			},
		})
		if !errors.Is(err, campaign.ErrInterrupted) {
			t.Fatalf("err = %v, want ErrInterrupted", err)
		}
		return st, len(st.Records())
	}

	dir := t.TempDir()

	// Signal path: flush before exiting (what the CLI's handler does),
	// then abandon the store without Close, like a dying process.
	sigPath := filepath.Join(dir, "signal.jsonl")
	sigStore, sigMem := runInterrupted(sigPath)
	if err := sigStore.Flush(); err != nil {
		t.Fatal(err)
	}
	reopened, err := campaign.OpenFile(sigPath)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(reopened.Records()); got != sigMem {
		t.Errorf("signal path lost records: %d on disk, %d recorded", got, sigMem)
	}
	sum, err := campaign.Run(spec, &fakeWorkload{}, reopened, campaign.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Ran+sum.Skipped != sum.Total {
		t.Errorf("signal resume does not converge: %+v", sum)
	}
	reopened.Close()

	// Crash path: no flush. The unflushed tail (everything, at
	// FlushEvery=1000) is gone; resume reruns it.
	crashPath := filepath.Join(dir, "crash.jsonl")
	_, crashMem := runInterrupted(crashPath)
	crashReopened, err := campaign.OpenFile(crashPath)
	if err != nil {
		t.Fatal(err)
	}
	defer crashReopened.Close()
	onDisk := len(crashReopened.Records())
	if onDisk >= crashMem {
		t.Errorf("crash lost nothing (%d on disk, %d recorded); FlushEvery not in effect?",
			onDisk, crashMem)
	}
	sum, err = campaign.Run(spec, &fakeWorkload{}, crashReopened, campaign.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Ran+sum.Skipped != sum.Total || sum.Ran == 0 {
		t.Errorf("crash resume does not converge: %+v", sum)
	}
}

// TestSnapshotPercent pins the progress arithmetic shared by the CLI
// progress line and the status view.
func TestSnapshotPercent(t *testing.T) {
	s := &campaign.Snapshot{Total: 200, Recorded: 50}
	if got := s.Percent(); got != 25 {
		t.Errorf("Percent() = %g, want 25", got)
	}
	empty := &campaign.Snapshot{}
	if got := empty.Percent(); got != 0 {
		t.Errorf("empty Percent() = %g, want 0", got)
	}
}

// TestFlushHookObservesCheckpoints: the store flush hook fires on
// periodic checkpoints, explicit Flush and Close.
func TestFlushHookObservesCheckpoints(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.jsonl")
	st, err := campaign.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	col := obs.New()
	m := campaign.NewMetrics(col)
	spec := spec2()
	spec.FlushEvery = 5
	if _, err := campaign.Run(spec, &fakeWorkload{}, st, campaign.Options{Metrics: m}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	got := gatherSums(col)
	if got[campaign.MetricFlush] == 0 {
		t.Errorf("no flushes observed at FlushEvery=5")
	}
	if int(got[campaign.MetricAppend]) != len(st.Records()) {
		t.Errorf("%s count = %v, want %d appends", campaign.MetricAppend,
			got[campaign.MetricAppend], len(st.Records()))
	}
	_ = os.Remove(path)
}
