package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestCounterIdentity: the same (name, labels) must return the same
// instance; different labels must not.
func TestCounterIdentity(t *testing.T) {
	c := New()
	a := c.Counter("boots_total", "boots", "driver", "ide_c")
	b := c.Counter("boots_total", "boots", "driver", "ide_c")
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	other := c.Counter("boots_total", "boots", "driver", "ide_devil")
	if a == other {
		t.Fatal("different labels shared a counter")
	}
	a.Inc()
	a.Add(2)
	if got := b.Value(); got != 3 {
		t.Fatalf("shared counter = %d, want 3", got)
	}
	if got := other.Value(); got != 0 {
		t.Fatalf("sibling counter = %d, want 0", got)
	}
}

func TestGauge(t *testing.T) {
	c := New()
	g := c.Gauge("workers", "active workers")
	g.Set(8)
	g.Add(-3)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

// TestKindMismatchPanics: re-registering a family under another kind
// is a programming error and must fail loudly.
func TestKindMismatchPanics(t *testing.T) {
	c := New()
	c.Counter("x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	c.Gauge("x_total", "x")
}

// TestHistogramBuckets pins the le semantics: a value equal to a bound
// lands in that bound's bucket; above every bound lands in +Inf.
func TestHistogramBuckets(t *testing.T) {
	c := New()
	h := c.Histogram("lat", "latency", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.5, 10, 99, 100, 101, 1e6} {
		h.Observe(v)
	}
	count, sum, buckets := h.Snapshot()
	if count != 8 {
		t.Fatalf("count = %d, want 8", count)
	}
	wantSum := 0.5 + 1 + 1.5 + 10 + 99 + 100 + 101 + 1e6
	if sum != wantSum {
		t.Fatalf("sum = %g, want %g", sum, wantSum)
	}
	want := []uint64{2, 2, 2, 2} // le=1: {0.5,1}; le=10: {1.5,10}; le=100: {99,100}; +Inf: {101,1e6}
	for i, w := range want {
		if buckets[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, buckets[i], w, buckets)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
}

// TestDisabledPathAllocsNothing is the tentpole's cost contract: every
// operation on the disabled (nil) collector and its nil metrics must
// be alloc-free.
func TestDisabledPathAllocsNothing(t *testing.T) {
	var c *Collector
	ctr := c.Counter("x_total", "x")
	g := c.Gauge("y", "y")
	h := c.Histogram("z", "z", nil)
	if ctr != nil || g != nil || h != nil {
		t.Fatal("nil collector handed out live metrics")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		ctr.Inc()
		ctr.Add(5)
		_ = ctr.Value()
		g.Set(1)
		h.Observe(3.5)
		t := h.Start()
		t.Stop()
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %.1f/op, want 0", allocs)
	}
	if c.Gather() != nil || c.Names() != nil {
		t.Fatal("nil collector gathered samples")
	}
}

// TestConcurrentExactness: hammering one counter and one histogram
// from many goroutines must lose nothing (this test is part of the
// -race surface CI runs).
func TestConcurrentExactness(t *testing.T) {
	c := New()
	ctr := c.Counter("hits_total", "hits")
	h := c.Histogram("v", "values", []float64{10})
	const goroutines, per = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				ctr.Inc()
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if got := ctr.Value(); got != goroutines*per {
		t.Fatalf("counter = %d, want %d", got, goroutines*per)
	}
	count, sum, _ := h.Snapshot()
	if count != goroutines*per || sum != float64(goroutines*per) {
		t.Fatalf("histogram count=%d sum=%g, want %d/%d",
			count, sum, goroutines*per, goroutines*per)
	}
}

// TestWritePrometheus pins the exposition format: HELP/TYPE headers,
// label rendering, and cumulative histogram buckets with +Inf, _sum
// and _count.
func TestWritePrometheus(t *testing.T) {
	c := New()
	c.Counter("boots_total", "Boots executed.", "driver", "ide_c").Add(7)
	h := c.Histogram("lat_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	var b strings.Builder
	if err := c.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, want := range []string{
		"# HELP boots_total Boots executed.\n",
		"# TYPE boots_total counter\n",
		`boots_total{driver="ide_c"} 7` + "\n",
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{le="0.1"} 1` + "\n",
		`lat_seconds_bucket{le="1"} 2` + "\n",
		`lat_seconds_bucket{le="+Inf"} 3` + "\n",
		"lat_seconds_sum 5.55\n",
		"lat_seconds_count 3\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q in:\n%s", want, got)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	c := New()
	c.Counter("x_total", "x", "path", `a\b"c`).Inc()
	var b strings.Builder
	c.WritePrometheus(&b)
	if !strings.Contains(b.String(), `x_total{path="a\\b\"c"} 1`) {
		t.Fatalf("label not escaped:\n%s", b.String())
	}
}

func TestSampleLabel(t *testing.T) {
	c := New()
	c.Counter("x_total", "x", "driver", "ide_c", "phase", "execute").Inc()
	samples := c.Gather()
	if len(samples) != 1 {
		t.Fatalf("gathered %d samples, want 1", len(samples))
	}
	if got := samples[0].Label("phase"); got != "execute" {
		t.Fatalf("Label(phase) = %q", got)
	}
	if got := samples[0].Label("absent"); got != "" {
		t.Fatalf("Label(absent) = %q", got)
	}
}

// BenchmarkDisabledSpan measures the tentpole's "~1 ns when disabled"
// claim: a full Start/Stop pair plus a counter Inc on nil metrics.
func BenchmarkDisabledSpan(b *testing.B) {
	var c *Collector
	h := c.Histogram("z", "z", nil)
	ctr := c.Counter("x_total", "x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := h.Start()
		t.Stop()
		ctr.Inc()
	}
}

// BenchmarkEnabledSpan is the live-path cost for comparison.
func BenchmarkEnabledSpan(b *testing.B) {
	c := New()
	h := c.Histogram("z", "z", nil)
	ctr := c.Counter("x_total", "x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := h.Start()
		t.Stop()
		ctr.Inc()
	}
}
