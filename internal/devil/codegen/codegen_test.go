package codegen_test

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/devil"
	"repro/internal/devil/codegen"
	"repro/internal/hw"
)

// shadowDevice records every write and serves reads from its cells, so
// stub semantics can be asserted at the port level.
type shadowDevice struct {
	cells  [16]uint32
	writes []struct {
		off hw.Port
		val uint32
	}
}

func (d *shadowDevice) Name() string { return "shadow" }

func (d *shadowDevice) Read(off hw.Port, w hw.AccessWidth) (uint32, error) {
	return d.cells[off], nil
}

func (d *shadowDevice) Write(off hw.Port, w hw.AccessWidth, v uint32) error {
	d.cells[off] = v
	d.writes = append(d.writes, struct {
		off hw.Port
		val uint32
	}{off, v})
	return nil
}

const testSpec = `
device testdev (base : bit[8] port @ {0..4})
{
    // Plain read/write register and variable.
    register plain = base @ 0 : bit[8];
    variable Whole = plain, volatile : int(8);

    // Masked write-only register: bit 7 forced 1, low bits forced 0.
    register masked = write base @ 1, mask '1..00000' : bit[8];
    private variable index = masked[6..5] : int(2);

    // Index-selected registers sharing a port via pre-actions.
    register win_a = read base @ 2, pre {index = 0}, mask '****....' : bit[8];
    register win_b = read base @ 2, pre {index = 1}, mask '****....' : bit[8];
    variable Pair = win_b[3..0] # win_a[3..0], volatile : int(8);

    // Enum-typed variable on a read/write masked register.
    register flags = base @ 3, mask '0000000.' : bit[8];
    variable Power = flags[0] : { POWER_ON <=> '1', POWER_OFF <=> '0' };

    // Set-typed variable.
    register modesel = base @ 4, mask '00000...' : bit[8];
    variable Mode = modesel[2..0], volatile : int {0, 2, 3};
}
`

func buildStubs(t *testing.T, mode codegen.Mode) (*devil.Stubs, *shadowDevice) {
	t.Helper()
	spec, err := devil.Compile("testdev.dil", testSpec)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	bus := hw.NewBus()
	dev := &shadowDevice{}
	if err := bus.Map(0x40, 5, dev); err != nil {
		t.Fatal(err)
	}
	stubs, err := spec.Generate(devil.Config{
		Bus:   bus,
		Bases: map[string]hw.Port{"base": 0x40},
		Mode:  mode,
	})
	if err != nil {
		t.Fatal(err)
	}
	return stubs, dev
}

func TestWholeRegisterRoundTrip(t *testing.T) {
	stubs, dev := buildStubs(t, codegen.Debug)
	if err := stubs.Set("Whole", codegen.UntypedInt(0xa5)); err != nil {
		t.Fatal(err)
	}
	if dev.cells[0] != 0xa5 {
		t.Errorf("register cell = %#x, want 0xa5", dev.cells[0])
	}
	v, err := stubs.Get("Whole")
	if err != nil {
		t.Fatal(err)
	}
	if v.Val != 0xa5 {
		t.Errorf("read back %#x", v.Val)
	}
}

func TestMaskFixingOnWrite(t *testing.T) {
	stubs, dev := buildStubs(t, codegen.Debug)
	// Setting index = 3 must write bit7=1 (forced), bits 6..5 = 11,
	// bits 4..0 = 0 (forced): 0xe0. index is private, so drive it through
	// the pre-action of a win_b read.
	if _, err := stubs.Get("Pair"); err != nil {
		t.Fatal(err)
	}
	// Pair reads win_b (pre index=1) then win_a (pre index=0): the masked
	// register must have seen 0xa0 then 0x80.
	var maskedWrites []uint32
	for _, w := range dev.writes {
		if w.off == 1 {
			maskedWrites = append(maskedWrites, w.val)
		}
	}
	if len(maskedWrites) != 2 || maskedWrites[0] != 0xa0 || maskedWrites[1] != 0x80 {
		t.Errorf("masked register writes = %#x, want [0xa0 0x80]", maskedWrites)
	}
}

func TestConcatenationOrder(t *testing.T) {
	stubs, dev := buildStubs(t, codegen.Debug)
	// win_a (low nibble of Pair) = 0x0c, win_b (high nibble) = 0x03; but
	// the two windows share one port cell in the shadow device, so set the
	// cell between the two reads by intercepting through the private index
	// write. Simplest: both windows read cell 2; give it a fixed value and
	// check assembly: value 0x5 in bits 3..0 of both reads = 0x55.
	dev.cells[2] = 0x05
	v, err := stubs.Get("Pair")
	if err != nil {
		t.Fatal(err)
	}
	if v.Val != 0x55 {
		t.Errorf("Pair = %#x, want 0x55 (win_b high, win_a low)", v.Val)
	}
}

func TestPrivateVariableInaccessible(t *testing.T) {
	stubs, _ := buildStubs(t, codegen.Debug)
	if _, err := stubs.Get("index"); err == nil {
		t.Error("reading a private variable succeeded")
	}
	if err := stubs.Set("index", codegen.UntypedInt(1)); err == nil {
		t.Error("writing a private variable succeeded")
	}
}

func TestAccessModeEnforcement(t *testing.T) {
	stubs, _ := buildStubs(t, codegen.Debug)
	// win_a/win_b are read-only sources: Pair cannot be written.
	if err := stubs.Set("Pair", codegen.UntypedInt(1)); err == nil {
		t.Error("writing a read-only variable succeeded")
	}
}

func TestDebugTypeAssertions(t *testing.T) {
	stubs, _ := buildStubs(t, codegen.Debug)
	on, ok := stubs.Const("POWER_ON")
	if !ok {
		t.Fatal("no POWER_ON constant")
	}
	if err := stubs.Set("Power", on); err != nil {
		t.Fatalf("typed set failed: %v", err)
	}
	// An untyped integer into an enum variable is a run-time check.
	err := stubs.Set("Power", codegen.UntypedInt(1))
	var ae *codegen.AssertError
	if !errors.As(err, &ae) {
		t.Errorf("untyped write to enum: got %v, want AssertError", err)
	}
	// A value of a different Devil type is a run-time check too.
	foreign := codegen.Value{File: "testdev.dil", Type: 9999, Val: 1}
	if err := stubs.Set("Power", foreign); !errors.As(err, &ae) {
		t.Errorf("foreign type write: got %v, want AssertError", err)
	}
}

func TestDebugRangeAssertions(t *testing.T) {
	stubs, dev := buildStubs(t, codegen.Debug)
	var ae *codegen.AssertError
	// Mode accepts only {0, 2, 3}.
	if err := stubs.Set("Mode", codegen.UntypedInt(1)); !errors.As(err, &ae) {
		t.Errorf("out-of-set write: got %v, want AssertError", err)
	}
	if err := stubs.Set("Mode", codegen.UntypedInt(2)); err != nil {
		t.Errorf("in-set write failed: %v", err)
	}
	// Whole is int(8): 256 is out of range.
	if err := stubs.Set("Whole", codegen.UntypedInt(256)); !errors.As(err, &ae) {
		t.Errorf("out-of-range write: got %v, want AssertError", err)
	}
	// A device returning an out-of-set value trips the read assertion
	// ("either the specification is incorrect, or the device does not
	// behave correctly", §2.3).
	dev.cells[4] = 0x01
	if _, err := stubs.Get("Mode"); !errors.As(err, &ae) {
		t.Errorf("out-of-set read: got %v, want AssertError", err)
	}
}

func TestProductionModeSkipsChecks(t *testing.T) {
	stubs, dev := buildStubs(t, codegen.Production)
	if err := stubs.Set("Mode", codegen.UntypedInt(1)); err != nil {
		t.Errorf("production mode asserted on write: %v", err)
	}
	dev.cells[4] = 0x01
	if _, err := stubs.Get("Mode"); err != nil {
		t.Errorf("production mode asserted on read: %v", err)
	}
	if err := stubs.Set("Power", codegen.UntypedInt(1)); err != nil {
		t.Errorf("production mode type-checked an enum write: %v", err)
	}
}

func TestEq(t *testing.T) {
	stubs, _ := buildStubs(t, codegen.Debug)
	on, _ := stubs.Const("POWER_ON")
	off, _ := stubs.Const("POWER_OFF")
	if eq, err := stubs.Eq(on, on); err != nil || !eq {
		t.Errorf("Eq(on, on) = %v, %v", eq, err)
	}
	if eq, err := stubs.Eq(on, off); err != nil || eq {
		t.Errorf("Eq(on, off) = %v, %v", eq, err)
	}
	// Different types: run-time check.
	foreign := codegen.Value{File: "other.dil", Type: 1, Val: 1}
	var ae *codegen.AssertError
	if _, err := stubs.Eq(on, foreign); !errors.As(err, &ae) {
		t.Errorf("Eq across types: got %v, want AssertError", err)
	}
	// Untyped comparisons are allowed (C ints).
	if eq, err := stubs.Eq(on, codegen.UntypedInt(1)); err != nil || !eq {
		t.Errorf("Eq(on, 1) = %v, %v", eq, err)
	}
}

// TestWholeRoundTripProperty: any byte written through the Whole stub
// reads back identically (the stub pipeline is lossless for full-width
// variables).
func TestWholeRoundTripProperty(t *testing.T) {
	stubs, _ := buildStubs(t, codegen.Debug)
	prop := func(v uint8) bool {
		if err := stubs.Set("Whole", codegen.UntypedInt(int64(v))); err != nil {
			return false
		}
		got, err := stubs.Get("Whole")
		return err == nil && got.Val == uint32(v)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestInterfacePublication(t *testing.T) {
	stubs, _ := buildStubs(t, codegen.Debug)
	iface := stubs.Interface()
	byName := make(map[string]codegen.VarSig)
	for _, v := range iface.Vars {
		byName[v.Name] = v
	}
	if _, ok := byName["index"]; ok {
		t.Error("private variable published in the interface")
	}
	whole := byName["Whole"]
	if whole.Block {
		t.Error("8-bit variables must not offer block stubs (FIFOs are 16/32-bit)")
	}
	power := byName["Power"]
	if power.Kind != codegen.KindEnum || len(power.Consts) != 2 {
		t.Errorf("Power signature: %+v", power)
	}
	if iface.Consts["POWER_ON"] != "Power" {
		t.Errorf("constant index: %v", iface.Consts)
	}
	pair := byName["Pair"]
	if pair.Writable || !pair.Readable {
		t.Errorf("Pair modes: %+v", pair)
	}
}

func TestGenerateValidation(t *testing.T) {
	spec, err := devil.Compile("testdev.dil", testSpec)
	if err != nil {
		t.Fatal(err)
	}
	// Missing base binding.
	_, err = spec.Generate(devil.Config{Bus: hw.NewBus(), Mode: codegen.Debug})
	if err == nil || !strings.Contains(err.Error(), "not bound") {
		t.Errorf("missing base: %v", err)
	}
	// Missing bus.
	if _, err := spec.Generate(devil.Config{Mode: codegen.Debug}); err == nil {
		t.Error("missing bus accepted")
	}
	// Invalid mode.
	_, err = spec.Generate(devil.Config{
		Bus:   hw.NewBus(),
		Bases: map[string]hw.Port{"base": 0},
	})
	if err == nil {
		t.Error("zero mode accepted")
	}
}
