package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/campaign/fleet"
	"repro/internal/drivers"
	"repro/internal/experiment"
	"repro/internal/obs"
)

// runCampaign dispatches the campaign subcommands: run, resume, merge,
// report, status.
func runCampaign(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("campaign: want a verb: run, resume, merge, report or status")
	}
	verb, rest := args[0], args[1:]
	switch verb {
	case "run":
		return campaignRun(rest, false)
	case "resume":
		return campaignRun(rest, true)
	case "merge":
		return campaignMerge(rest)
	case "report":
		return campaignReport(rest)
	case "status":
		return campaignStatus(rest)
	default:
		return fmt.Errorf("campaign: unknown verb %q (want run, resume, merge, report or status)", verb)
	}
}

// runMetrics lists every metric family the instrumented stack can
// register — scripts/check_docs.sh greps this list against
// ARCHITECTURE.md's Observability section.
func runMetrics(args []string) error {
	if len(args) > 0 {
		return fmt.Errorf("metrics: takes no arguments")
	}
	names := append(campaign.MetricNames(), experiment.BootMetricNames()...)
	names = append(names, fleet.MetricNames()...)
	sort.Strings(names)
	for _, n := range names {
		fmt.Println(n)
	}
	return nil
}

// runScenarios lists the registered hardware scenarios — the values
// `campaign run -scenario` accepts. With -names it prints bare names
// only; scripts/check_docs.sh greps that list against the docs.
func runScenarios(args []string) error {
	fs := flag.NewFlagSet("driverlab scenarios", flag.ContinueOnError)
	names := fs.Bool("names", false, "print bare scenario names only (for scripts)")
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("scenarios: takes no arguments")
	}
	for _, d := range experiment.Scenarios() {
		if *names {
			fmt.Println(d.Name)
		} else {
			fmt.Printf("%-12s %s\n", d.Name, d.Help)
		}
	}
	return nil
}

// parseShards parses "-shard 0,2,5" into indices.
func parseShards(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad shard list %q: %w", s, err)
		}
		out = append(out, n)
	}
	return out, nil
}

// storedSpec extracts the spec record of an existing store.
func storedSpec(store campaign.Store) (campaign.Spec, bool) {
	for _, r := range store.Records() {
		if r.Kind == campaign.KindSpec && r.Spec != nil {
			return *r.Spec, true
		}
	}
	return campaign.Spec{}, false
}

// campaignRun executes (or resumes) a campaign against a JSONL store.
// Resume takes its spec from the store, so it only accepts execution
// flags; the run-shaping flags are rejected rather than silently
// ignored.
func campaignRun(args []string, resume bool) error {
	verb := "run"
	if resume {
		verb = "resume"
	}
	fs := flag.NewFlagSet("driverlab campaign "+verb, flag.ContinueOnError)
	store := fs.String("store", "", "JSONL result store (required)")
	shard := fs.String("shard", "", "comma-separated shard indices to run (default: all)")
	workers := fs.Int("workers", 0, "boot worker count (default: GOMAXPROCS)")
	quiet := fs.Bool("quiet", false, "suppress live progress")
	statusAddr := fs.String("status-addr", "",
		"serve /metrics (Prometheus), /status (JSON) and /debug/pprof on this address while the campaign runs (e.g. :9100)")
	var name, driversFlag, stub, backend, scenarios *string
	var sample, shards *int
	var seed *uint64
	var permissive *bool
	if !resume {
		name = fs.String("name", "campaign", "campaign name")
		driversFlag = fs.String("drivers", "ide_c,ide_devil",
			"comma-separated driver list ("+strings.Join(drivers.Names(), ", ")+")")
		sample = fs.Int("sample", 25, "percentage of mutants to boot (paper: 25)")
		seed = fs.Uint64("seed", 2001, "sampling seed")
		shards = fs.Int("shards", 1, "shard count the work-list partitions into")
		stub = fs.String("stub", "", "Devil stub mode: debug (default) or production")
		permissive = fs.Bool("permissive", false, "downgrade CDevil typing to plain C rules")
		backend = fs.String("backend", "", "hwC execution backend: block (default), compiled or interp")
		scenarios = fs.String("scenario", "",
			"comma-separated hardware scenario cells to cross with the driver list "+
				"(see `driverlab scenarios`; e.g. pristine,flaky-bus:5,timing — default pristine only)")
	}
	// Execution-strategy knobs are fingerprint-excluded, so both run and
	// resume accept them: a store started under one front end, flush
	// interval or boot deadline may finish under another.
	frontend := fs.String("frontend", "", "per-mutant front end: incremental (default) or full")
	flushEvery := fs.Int("flush-every", 0,
		"store checkpoint interval in records (0: the store default of 64); raise on long campaigns to trade crash-loss window for fewer writes")
	bootTimeout := fs.Duration("boot-timeout", 0,
		"per-boot wall-clock deadline behind the step watchdog (0: the 30s default)")
	snapshot := fs.String("snapshot", "",
		"pristine-prefix snapshotting on worker rigs: on (default) or off")
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}
	if *store == "" {
		return fmt.Errorf("campaign run: -store is required")
	}
	shardSel, err := parseShards(*shard)
	if err != nil {
		return err
	}

	st, err := campaign.OpenFile(*store)
	if err != nil {
		return err
	}
	defer st.Close()

	var spec campaign.Spec
	if resume {
		// Resume takes the spec from the store itself; only the
		// fingerprint-excluded execution knobs may be overridden.
		prior, ok := storedSpec(st)
		if !ok {
			return fmt.Errorf("campaign resume: %s holds no spec record", *store)
		}
		spec = prior
		if _, err := experiment.ParseFrontend(*frontend); err != nil {
			return err
		}
		if *frontend != "" {
			spec.Frontend = *frontend
		}
		if *snapshot != "" {
			spec.Snapshot = *snapshot
		}
		if *flushEvery > 0 {
			spec.FlushEvery = *flushEvery
		}
		if *bootTimeout > 0 {
			spec.BootTimeoutMS = int(bootTimeout.Milliseconds())
		}
		fmt.Fprintf(os.Stderr, "campaign: resuming %q from %s\n", spec.Name, *store)
	} else {
		// Run builds the spec from flags; on an existing store the engine
		// rejects it if the fingerprint differs from the stored spec.
		var driverList []string
		for _, d := range strings.Split(*driversFlag, ",") {
			if d = strings.TrimSpace(d); d != "" {
				driverList = append(driverList, d)
			}
		}
		// Aliases of the same engine ("tree", "block" vs "") are
		// canonicalized by Spec.Normalized, so they fingerprint the same;
		// here only validity is checked.
		if _, err := experiment.ParseBackend(*backend); err != nil {
			return err
		}
		if _, err := experiment.ParseFrontend(*frontend); err != nil {
			return err
		}
		var scenarioList []string
		for _, sc := range strings.Split(*scenarios, ",") {
			if sc = strings.TrimSpace(sc); sc != "" {
				scenarioList = append(scenarioList, sc)
			}
		}
		spec = campaign.Spec{
			Name:       *name,
			Drivers:    driverList,
			SamplePct:  *sample,
			Seed:       *seed,
			Shards:     *shards,
			StubMode:   *stub,
			Permissive: *permissive,
			Backend:    *backend,
			Scenarios:  scenarioList,
			Frontend:   *frontend,
			FlushEvery: *flushEvery,
			Snapshot:   *snapshot,
		}
		if *bootTimeout > 0 {
			spec.BootTimeoutMS = int(bootTimeout.Milliseconds())
		}
	}

	// Live status: the tracker is always on (it feeds the progress
	// line); the metric collector and the HTTP endpoint only with
	// -status-addr.
	tracker := campaign.NewStatusTracker()
	wl := experiment.NewWorkload()
	var metrics *campaign.Metrics
	if *statusAddr != "" {
		col := obs.New()
		metrics = campaign.NewMetrics(col)
		wl = experiment.NewObservedWorkload(col)
		srv, err := obs.Serve(*statusAddr, col, func() any { return tracker.Snapshot() })
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "campaign: observability endpoint at %s (/metrics, /status, /debug/pprof/)\n", srv.URL)
	}

	// Graceful interruption: the first SIGINT/SIGTERM stops feeding
	// tasks (in-flight boots finish and are recorded), the store is
	// flushed, and a resume hint is printed; a second signal kills the
	// process immediately.
	interrupt := make(chan struct{})
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	finished := make(chan struct{})
	defer close(finished)
	go func() {
		select {
		case <-sigc:
		case <-finished:
			return
		}
		fmt.Fprintf(os.Stderr, "\ncampaign: interrupted, finishing in-flight boots (again to kill)\n")
		close(interrupt)
		select {
		case <-sigc:
			os.Exit(130)
		case <-finished:
		}
	}()

	opts := campaign.Options{
		Workers:   *workers,
		Shards:    shardSel,
		Metrics:   metrics,
		Status:    tracker,
		Interrupt: interrupt,
	}
	if !*quiet {
		opts.Progress = progressPrinter(tracker)
	}
	sum, err := campaign.Run(spec, wl, st, opts)
	if !*quiet {
		fmt.Fprintln(os.Stderr)
	}
	if errors.Is(err, campaign.ErrInterrupted) {
		if ferr := st.Flush(); ferr != nil {
			return ferr
		}
		snap := tracker.Snapshot()
		fmt.Fprintf(os.Stderr, "campaign: interrupted — %d/%d selected results recorded and flushed\n",
			snap.Recorded, snap.Total)
		fmt.Fprintf(os.Stderr, "campaign: resume with: driverlab campaign resume -store %s\n", *store)
		return nil
	}
	if err != nil {
		return err
	}
	dedup := ""
	if sum.Deduped > 0 {
		dedup = fmt.Sprintf(", %d recorded from identical streams", sum.Deduped)
	}
	if sum.Panics > 0 {
		dedup += fmt.Sprintf(", %d harness panics quarantined", sum.Panics)
	}
	fmt.Printf("campaign %q: %d selected, %d already stored, %d booted this run%s\n",
		spec.Normalized().Name, sum.Total, sum.Skipped, sum.Ran, dedup)
	if metrics != nil {
		for _, line := range fallbackSummary(metrics.Collector()) {
			fmt.Println("  " + line)
		}
	}
	for _, line := range campaign.Completion(st.Records()) {
		fmt.Println("  " + line)
	}
	return nil
}

// fallbackSummary reports the boot pipeline's fallback counters of an
// observed run: compiled-backend boots that executed on the reference
// interpreter, and incremental-front-end boots that re-ran the full
// pipeline.
func fallbackSummary(col *obs.Collector) []string {
	var interp, full float64
	for _, s := range col.Gather() {
		switch s.Name {
		case experiment.MetricInterpFallbacks:
			interp += s.Value
		case experiment.MetricFullFrontend:
			full += s.Value
		}
	}
	var lines []string
	if interp > 0 {
		lines = append(lines, fmt.Sprintf("%.0f boots fell back to the reference interpreter", interp))
	}
	if full > 0 {
		lines = append(lines, fmt.Sprintf("%.0f boots re-ran the full front end (span-unsafe mutations)", full))
	}
	return lines
}

// progressPrinter returns a rate-limited live progress callback. The
// line is rendered from the same campaign.Snapshot the /status
// endpoint serves, clamped to the terminal width.
func progressPrinter(tracker *campaign.StatusTracker) func(done, total int) {
	width := termWidth()
	var last time.Time
	return func(done, total int) {
		now := time.Now()
		if done < total && now.Sub(last) < 200*time.Millisecond {
			return
		}
		last = now
		fmt.Fprintf(os.Stderr, "\r%s\x1b[K", progressLine(tracker.Snapshot(), width))
	}
}

// campaignMerge folds shard stores into one.
func campaignMerge(args []string) error {
	fs := flag.NewFlagSet("driverlab campaign merge", flag.ContinueOnError)
	out := fs.String("out", "", "merged JSONL store to write (required)")
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}
	ins := fs.Args()
	if *out == "" || len(ins) == 0 {
		return fmt.Errorf("campaign merge: want -out merged.jsonl plus input stores")
	}
	dst, err := campaign.OpenFile(*out)
	if err != nil {
		return err
	}
	defer dst.Close()
	var sources []campaign.Store
	for _, path := range ins {
		src, err := campaign.OpenFile(path)
		if err != nil {
			return err
		}
		defer src.Close()
		sources = append(sources, src)
	}
	if err := campaign.Merge(dst, sources...); err != nil {
		return err
	}
	fmt.Printf("merged %d stores into %s\n", len(ins), *out)
	for _, line := range campaign.Completion(dst.Records()) {
		fmt.Println("  " + line)
	}
	return nil
}

// campaignReport re-derives the paper's tables from a store.
func campaignReport(args []string) error {
	fs := flag.NewFlagSet("driverlab campaign report", flag.ContinueOnError)
	store := fs.String("store", "", "JSONL result store (required)")
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}
	if *store == "" {
		return fmt.Errorf("campaign report: -store is required")
	}
	st, err := campaign.OpenFile(*store)
	if err != nil {
		return err
	}
	defer st.Close()
	spec, ok := storedSpec(st)
	if !ok {
		return fmt.Errorf("campaign report: %s holds no spec record", *store)
	}
	tables, order, err := campaign.Aggregate(st.Records())
	if err != nil {
		return err
	}
	for _, label := range order {
		t := tables[label]
		status := "complete"
		if !t.Complete() {
			status = fmt.Sprintf("partial: %d/%d booted", t.Results, t.Selected)
		}
		cell := t.Driver
		if t.Scenario != "" {
			cell = fmt.Sprintf("%s under scenario %s", t.Driver, t.Scenario)
		}
		caption := fmt.Sprintf("Campaign %q: mutations on %s (%d%% sample, seed %d; %s)",
			spec.Name, cell, spec.SamplePct, spec.Seed, status)
		fmt.Println(experiment.FormatDriverTable(experiment.TableFromCampaign(t), caption))
	}
	// Cross-cell summary: how each scenario cell moved the headline
	// detection metrics against the same driver's pristine cell.
	var deltas []string
	for _, label := range order {
		t := tables[label]
		if t.Scenario == "" {
			continue
		}
		base, ok := tables[t.Driver]
		if !ok {
			continue // no pristine cell to compare against
		}
		bt := experiment.TableFromCampaign(base)
		st := experiment.TableFromCampaign(t)
		deltas = append(deltas, fmt.Sprintf(
			"%-28s detected %+5.1f%% (%.1f%% vs pristine %.1f%%), silent %+5.1f%% (%.1f%% vs %.1f%%)",
			label, st.DetectedPct()-bt.DetectedPct(), st.DetectedPct(), bt.DetectedPct(),
			st.SilentPct()-bt.SilentPct(), st.SilentPct(), bt.SilentPct()))
	}
	if len(deltas) > 0 {
		fmt.Println("Scenario detection deltas (vs the same driver's pristine cell):")
		for _, d := range deltas {
			fmt.Println("  " + d)
		}
		fmt.Println()
	}
	// Dedup savings, from the dedup_of provenance: results recorded by
	// copying an identical mutant's outcome instead of booting. (The
	// interpreter-fallback counters are live-only; an observed run
	// prints them — see fallbackSummary.)
	if snap := campaign.SnapshotFromRecords(st.Records()); snap.Recorded > 0 {
		fmt.Printf("dedup savings: %d of %d recorded results copied from identical mutant streams (%.1f%% of boots avoided)\n",
			snap.Deduped, snap.Recorded, 100*float64(snap.Deduped)/float64(snap.Recorded))
	}
	return nil
}
