package cincr

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cdriver/cast"
	"repro/internal/cdriver/clexer"
	"repro/internal/cdriver/cparser"
	"repro/internal/cdriver/ctoken"
	"repro/internal/mutation/cmut"
)

const miniDriver = `
#define BASE 0x1f0
#define MASK 0x80

int ready;
int limit = BASE + 1;

static int probe(int port) {
	int v;
	v = inb(port);
	while (v & MASK) {
		v = inb(port);
	}
	return v;
}

int drv_init(void) {
	ready = probe(BASE);
	return 0;
}
`

func lexAll(t testing.TB, src string) []ctoken.Token {
	t.Helper()
	toks, errs := clexer.Lex(src)
	if len(errs) > 0 {
		t.Fatalf("lex: %v", errs[0])
	}
	return toks
}

func analyze(t testing.TB, src string) (*Source, []ctoken.Token) {
	t.Helper()
	toks := lexAll(t, src)
	s, err := Analyze(toks)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return s, toks
}

func TestAnalyzeSpansPartitionTheStream(t *testing.T) {
	s, toks := analyze(t, miniDriver)
	want := []struct {
		kind SpanKind
		name string
	}{
		{SpanMacro, "BASE"}, {SpanMacro, "MASK"},
		{SpanVar, "ready"}, {SpanVar, "limit"},
		{SpanFunc, "probe"}, {SpanFunc, "drv_init"},
	}
	if len(s.Spans) != len(want) {
		t.Fatalf("got %d spans, want %d", len(s.Spans), len(want))
	}
	next := 0
	for i, sp := range s.Spans {
		if sp.Kind != want[i].kind || sp.Name != want[i].name {
			t.Errorf("span %d = %s %q, want %s %q", i, sp.Kind, sp.Name, want[i].kind, want[i].name)
		}
		if sp.Start != next {
			t.Errorf("span %d starts at %d, want %d (spans must partition)", i, sp.Start, next)
		}
		next = sp.End
	}
	if next != len(toks) {
		t.Errorf("spans cover %d of %d tokens", next, len(toks))
	}
	for i := range toks {
		if s.SpanOf(i) < 0 {
			t.Errorf("token %d not assigned to a span", i)
		}
	}
	if s.SpanOf(-1) != -1 || s.SpanOf(len(toks)) != -1 {
		t.Error("out-of-range token indices must report span -1")
	}
}

// respanVsFull applies one replacement both ways and requires either an
// ErrSpanUnsafe fallback or a spliced program identical to the full
// parse of the materialised stream — the incremental front end's core
// invariant.
func respanVsFull(t *testing.T, s *Source, idx int, repl ctoken.Token) (unsafe bool) {
	t.Helper()
	_, declIdx, decl, err := s.Respan(nil, idx, repl)
	mut := &Mutation{Src: s, Index: idx, Replacement: repl}
	full, perrs := cparser.ParseTokens(mut.Apply())
	if err != nil {
		if !errors.Is(err, ErrSpanUnsafe) {
			t.Fatalf("Respan(%d): unexpected error %v", idx, err)
		}
		return true
	}
	// Respan succeeded: the full parse must agree cleanly.
	if len(perrs) > 0 {
		t.Fatalf("Respan(%d) succeeded but full parse errors: %v", idx, perrs[0])
	}
	pristine, _ := cparser.ParseTokens(s.Tokens)
	spliced := &cast.Program{Decls: append([]cast.Decl(nil), pristine.Decls...)}
	spliced.Decls[declIdx] = decl
	if got, want := dumpProgram(spliced), dumpProgram(full); got != want {
		t.Fatalf("Respan(%d): spliced program differs from full parse:\n--- spliced\n%s\n--- full\n%s",
			idx, got, want)
	}
	return false
}

func tok(kind ctoken.Kind, lit string, at ctoken.Token) ctoken.Token {
	return ctoken.Token{Kind: kind, Lit: lit, Pos: at.Pos, Tagged: at.Tagged}
}

// TestRespanEdgeCases drives the span boundaries the issue calls out:
// the first and last token of the stream, function-boundary braces and
// parens, and macro-definition tokens. Structural replacements must
// fall back (ErrSpanUnsafe), value replacements must splice.
func TestRespanEdgeCases(t *testing.T) {
	s, toks := analyze(t, miniDriver)
	last := len(toks) - 1

	find := func(kind ctoken.Kind, lit string) int {
		for i, tk := range toks {
			if tk.Kind == kind && (lit == "" || tk.Lit == lit) {
				return i
			}
		}
		t.Fatalf("no %v %q token", kind, lit)
		return -1
	}

	cases := []struct {
		name       string
		idx        int
		repl       ctoken.Token
		wantUnsafe bool
	}{
		{"first token replaced by ident", 0, tok(ctoken.Ident, "oops", toks[0]), true},
		{"last token (closing brace) replaced by semi", last, tok(ctoken.Semi, "", toks[last]), true},
		{"last token replaced by itself", last, toks[last], false},
		{"macro name renamed", find(ctoken.Ident, "BASE"), tok(ctoken.Ident, "ELSEWHERE", toks[find(ctoken.Ident, "BASE")]), true},
		{"macro body literal changed", find(ctoken.HexInt, "0x1f0"), tok(ctoken.DecInt, "496", toks[0]), false},
		{"function opening paren dropped", find(ctoken.LParen, ""), tok(ctoken.Semi, "", toks[0]), true},
		{"function body brace replaced", find(ctoken.LBrace, ""), tok(ctoken.RBrace, "", toks[0]), true},
		{"statement-level literal changed", find(ctoken.HexInt, "0x80"), tok(ctoken.HexInt, "0x81", toks[0]), false},
		{"operator swapped inside function", find(ctoken.And, ""), tok(ctoken.Or, "|", toks[0]), false},
		{"index beyond stream", len(toks), tok(ctoken.Semi, "", toks[0]), true},
		{"negative index", -1, tok(ctoken.Semi, "", toks[0]), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := respanVsFull(t, s, tc.idx, tc.repl); got != tc.wantUnsafe {
				t.Errorf("unsafe = %v, want %v", got, tc.wantUnsafe)
			}
		})
	}
}

// TestScratchReuseDoesNotAllocate: the hot path's span buffer is
// caller-owned and reused.
func TestScratchReuse(t *testing.T) {
	s, toks := analyze(t, miniDriver)
	var scratch []ctoken.Token
	for i := range toks {
		var err error
		scratch, _, _, err = s.Respan(scratch, i, toks[i])
		if err != nil {
			t.Fatalf("identity respan of token %d: %v", i, err)
		}
	}
}

// loadDriver reads an embedded driver source from the repository tree.
func loadDriver(t testing.TB, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "drivers", "src", name+".c"))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestIncrementalMatchesFullForAllBusmouseMutants is the exhaustive
// program-identity proof of the acceptance criteria: for every mutant
// cmut enumerates over busmouse_c, the incremental front end (respan +
// splice) must produce a program identical to a full parse of the
// materialised mutated stream. No mutant of the enumeration may even
// need the ErrSpanUnsafe fallback.
func TestIncrementalMatchesFullForAllBusmouseMutants(t *testing.T) {
	toks := lexAll(t, loadDriver(t, "busmouse_c"))
	s, err := Analyze(toks)
	if err != nil {
		t.Fatalf("Analyze(busmouse_c): %v", err)
	}
	res, err := cmut.Enumerate(toks, cmut.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pristine, perrs := cparser.ParseTokens(toks)
	if len(perrs) > 0 {
		t.Fatal(perrs[0])
	}
	var scratch []ctoken.Token
	fallbacks := 0
	for _, m := range res.Mutants {
		var declIdx int
		var decl cast.Decl
		scratch, declIdx, decl, err = s.Respan(scratch, m.TokenIndex, m.Replacement)
		if err != nil {
			fallbacks++
			continue
		}
		spliced := &cast.Program{Decls: append([]cast.Decl(nil), pristine.Decls...)}
		spliced.Decls[declIdx] = decl
		full, fperrs := cparser.ParseTokens(res.Apply(m))
		if len(fperrs) > 0 {
			t.Fatalf("mutant %d (%s): respan succeeded but full parse fails: %v",
				m.ID, m.Description, fperrs[0])
		}
		if got, want := dumpProgram(spliced), dumpProgram(full); got != want {
			t.Fatalf("mutant %d (%s): incremental program differs from full recompile:\n--- incremental\n%s\n--- full\n%s",
				m.ID, m.Description, got, want)
		}
	}
	if fallbacks != 0 {
		t.Errorf("%d of %d mutants needed the full-recompile fallback; want 0 for busmouse_c",
			fallbacks, len(res.Mutants))
	}
	t.Logf("busmouse_c: all %d mutants spliced to programs identical to a full recompile", len(res.Mutants))
}

// TestAnalyzeRejectsUnrecognisedShapes: streams outside the top-level
// grammar must fail Analyze (the caller then keeps the full pipeline).
func TestAnalyzeRejectsUnrecognisedShapes(t *testing.T) {
	for _, src := range []string{
		"int ;",              // missing name
		"foo bar;",           // not a type
		"int f(void) {",      // unterminated body
		"#define",            // truncated define
		"int x = 1",          // unterminated declaration
		"int f(void) { } }",  // trailing garbage
		"static inline int;", // qualifiers without declaration
	} {
		toks, _ := clexer.Lex(src)
		if _, err := Analyze(toks); err == nil {
			t.Errorf("Analyze(%q) accepted an unrecognised shape", src)
		}
	}
}
