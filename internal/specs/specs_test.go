package specs_test

import (
	"testing"

	"repro/internal/devil"
	"repro/internal/specs"
)

// TestAllSpecsCompile guards the Table 2 corpus: every embedded
// specification must pass the full Devil front end with zero diagnostics.
func TestAllSpecsCompile(t *testing.T) {
	all := specs.All()
	if len(all) < 5 {
		t.Fatalf("expected at least the 5 Table-2 specifications, got %d", len(all))
	}
	for _, s := range all {
		t.Run(s.Name, func(t *testing.T) {
			compiled, err := devil.Compile(s.Filename, s.Source)
			if err != nil {
				if ce, ok := err.(*devil.CompileError); ok {
					for _, e := range ce.All() {
						t.Errorf("  %v", e)
					}
				}
				t.Fatalf("compile %s: %v", s.Name, err)
			}
			if compiled.AST.Name == "" {
				t.Error("empty device name")
			}
			if s.Lines() == 0 {
				t.Error("empty specification")
			}
		})
	}
}

func TestLoadUnknown(t *testing.T) {
	if _, err := specs.Load("nonexistent"); err == nil {
		t.Error("loading an unknown spec should fail")
	}
}
