package devilmut

import (
	"fmt"
	"sort"

	"repro/internal/devil/ast"
	"repro/internal/devil/parser"
	"repro/internal/devil/scanner"
	"repro/internal/devil/token"
	"repro/internal/mutation"
)

// SiteKind classifies a mutation site.
type SiteKind string

// Site kinds.
const (
	SiteLiteral  SiteKind = "literal"
	SiteOperator SiteKind = "operator"
	SiteIdent    SiteKind = "identifier"
)

// Site is one mutable token position.
type Site struct {
	Index int
	Pos   token.Pos
	Kind  SiteKind
}

// Mutant is one single-token substitution of a specification.
type Mutant struct {
	ID          int
	SiteIndex   int
	TokenIndex  int
	Replacement token.Token
	Description string
}

// Result is a full mutant enumeration for one specification.
type Result struct {
	Tokens  []token.Token
	Sites   []Site
	Mutants []Mutant
}

// Apply materialises a mutant's token stream.
func (r *Result) Apply(m Mutant) []token.Token {
	out := make([]token.Token, len(r.Tokens))
	copy(out, r.Tokens)
	out[m.TokenIndex] = m.Replacement
	return out
}

// Render materialises a mutant as specification source text.
func (r *Result) Render(m Mutant) string {
	return scanner.Render(r.Apply(m))
}

// operatorClasses maps each mutable Devil operator to its replacements.
var operatorClasses = map[token.Kind][]token.Kind{
	token.Comma:   {token.DotDot},
	token.DotDot:  {token.Comma},
	token.MapTo:   {token.MapFrom, token.MapBoth},
	token.MapFrom: {token.MapTo, token.MapBoth},
	token.MapBoth: {token.MapTo, token.MapFrom},
}

// Enumerate generates every mutant of a specification source. The source
// must compile (mutants are derived from correct specifications).
func Enumerate(src string) (*Result, error) {
	toks, lexErrs := scanner.ScanAll(src)
	if len(lexErrs) > 0 {
		return nil, fmt.Errorf("enumerate: source does not lex: %v", lexErrs[0])
	}
	dev, perrs := parser.Parse(src)
	if len(perrs) > 0 {
		return nil, fmt.Errorf("enumerate: source does not parse: %v", perrs[0])
	}

	// Symbol classes and excluded declaration positions.
	var ports, regs, vars []string
	declPos := make(map[int]bool)
	for _, p := range dev.Params {
		ports = append(ports, p.Name)
		declPos[p.NamePos.Offset] = true
	}
	for _, r := range dev.Registers() {
		regs = append(regs, r.Name)
		// Register declaration names stay mutable: renaming a declaration
		// into an existing register name is a uniqueness violation the
		// checker must catch. Only variable declaration names are excluded
		// (§3.2: such a mutation would only affect the stub name).
	}
	for _, v := range dev.Variables() {
		vars = append(vars, v.Name)
		declPos[v.NamePos.Offset] = true
	}
	sort.Strings(ports)
	sort.Strings(regs)
	sort.Strings(vars)
	classOf := make(map[string][]string)
	for _, n := range ports {
		classOf[n] = ports
	}
	for _, n := range regs {
		classOf[n] = regs
	}
	for _, n := range vars {
		classOf[n] = vars
	}
	// Enum case names have no uses and are declaration-only: excluded.
	for _, v := range dev.Variables() {
		if v.Type != nil {
			for _, cs := range v.Type.Cases {
				declPos[cs.NamePos.Offset] = true
			}
		}
	}

	res := &Result{Tokens: toks}
	for i, t := range toks {
		switch t.Kind {
		case token.Int:
			res.literalSite(i, t, "", mutation.AlphabetDecimal)
		case token.HexInt:
			res.literalSite(i, t, "0x", mutation.AlphabetHex)
		case token.BitString:
			res.bitSite(i, t, mutation.AlphabetBitString)
		case token.BitPattern:
			res.bitSite(i, t, mutation.AlphabetBitPattern)
		case token.Comma, token.DotDot, token.MapTo, token.MapFrom, token.MapBoth:
			res.operatorSite(i, t)
		case token.Ident:
			if declPos[t.Pos.Offset] {
				continue
			}
			pool := classOf[t.Lit]
			if len(pool) < 2 {
				continue
			}
			site := res.addSite(Site{Index: i, Pos: t.Pos, Kind: SiteIdent})
			for _, name := range pool {
				if name == t.Lit {
					continue
				}
				repl := t
				repl.Lit = name
				res.addMutant(site, i, repl,
					fmt.Sprintf("identifier %s -> %s at %s", t.Lit, name, t.Pos))
			}
		}
	}
	return res, nil
}

func (r *Result) addSite(s Site) int {
	r.Sites = append(r.Sites, s)
	return len(r.Sites) - 1
}

func (r *Result) addMutant(siteIdx, tokIdx int, repl token.Token, desc string) {
	r.Mutants = append(r.Mutants, Mutant{
		ID:          len(r.Mutants),
		SiteIndex:   siteIdx,
		TokenIndex:  tokIdx,
		Replacement: repl,
		Description: desc,
	})
}

// literalSite expands the typo model over a numeric literal.
func (r *Result) literalSite(i int, t token.Token, prefix, alphabet string) {
	digits := t.Lit[len(prefix):]
	edits := mutation.LiteralEdits(digits, alphabet)
	if len(edits) == 0 {
		return
	}
	site := r.addSite(Site{Index: i, Pos: t.Pos, Kind: SiteLiteral})
	orig := numValue(digits, alphabet)
	for _, e := range edits {
		// Mutants must differ semantically.
		if numValue(e.Text, alphabet) == orig {
			continue
		}
		repl := t
		repl.Lit = prefix + e.Text
		r.addMutant(site, i, repl,
			fmt.Sprintf("%s literal %s -> %s at %s", e.Kind, t.Lit, repl.Lit, t.Pos))
	}
}

// bitSite expands the typo model over a bit string or pattern; any textual
// change to a bit literal is semantic (width or bit roles change).
func (r *Result) bitSite(i int, t token.Token, alphabet string) {
	edits := mutation.LiteralEdits(t.Lit, alphabet)
	if len(edits) == 0 {
		return
	}
	site := r.addSite(Site{Index: i, Pos: t.Pos, Kind: SiteLiteral})
	for _, e := range edits {
		repl := t
		repl.Lit = e.Text
		// Bit patterns degrading to pure bit strings (or vice versa) keep
		// their original token kind irrelevant: the scanner re-classifies
		// on render, and the parser accepts both kinds in mask/enum
		// positions.
		r.addMutant(site, i, repl,
			fmt.Sprintf("%s bit literal '%s' -> '%s' at %s", e.Kind, t.Lit, e.Text, t.Pos))
	}
}

func (r *Result) operatorSite(i int, t token.Token) {
	site := r.addSite(Site{Index: i, Pos: t.Pos, Kind: SiteOperator})
	for _, nk := range operatorClasses[t.Kind] {
		repl := t
		repl.Kind = nk
		repl.Lit = nk.String()
		r.addMutant(site, i, repl,
			fmt.Sprintf("operator %s -> %s at %s", t.Kind, nk, t.Pos))
	}
}

// numValue evaluates digits in the base implied by the alphabet.
func numValue(digits, alphabet string) int64 {
	base := int64(len(alphabet))
	var v int64
	for i := 0; i < len(digits); i++ {
		var d int64
		c := digits[i]
		switch {
		case c >= '0' && c <= '9':
			d = int64(c - '0')
		case c >= 'a' && c <= 'f':
			d = int64(c-'a') + 10
		}
		v = v*base + d
	}
	return v
}

// CheckMutant compiles a mutated specification and reports whether the
// Devil compiler detected it (Table 2's detection criterion), along with
// the diagnostic when detected.
func CheckMutant(res *Result, m Mutant, filename string) (detected bool, diag string) {
	src := res.Render(m)
	if err := compile(filename, src); err != nil {
		return true, err.Error()
	}
	return false, ""
}

// compile runs the full Devil front end (scanner, parser, checker).
func compile(filename, src string) error {
	dev, perrs := parser.Parse(src)
	if err := perrs.Err(); err != nil {
		return err
	}
	return checkDevice(dev)
}

// checkDevice is split out for testability.
func checkDevice(dev *ast.Device) error {
	_, errs := devilcheck(dev)
	return errs
}
