package ccompile

import (
	"fmt"

	"repro/internal/cdriver/cast"
	"repro/internal/cdriver/cinterp"
	"repro/internal/cdriver/ctoken"
	"repro/internal/kernel"
)

// Loop superblocks: a while/for loop whose body is made of simple
// statements and nested control statements (no direct break, continue or
// return) compiles to a single closure that runs the whole loop
// internally — threaded code instead of one closure dispatch per
// statement per iteration.
//
// Three specializations carry the win on the driver corpus' hot shape,
// the bounded poll (`for (t = 0; t < TIMEOUT; t++) { if (inb(p) & MASK)
// return 0; }`):
//
//   - the loop condition compiles to a predFn returning a bare bool
//     (specialized for fused comparisons like `t < TIMEOUT`), so the
//     per-iteration test pays no Value boxing;
//   - maximal runs of simple statements compile to lean error-only
//     cores (leanFn) — no (flow, Value, error) triple per statement —
//     and an if statement flattens to its condition closure plus branch
//     dispatch with no per-iteration statement-closure hop;
//   - the per-iteration watchdog charges that sequential execution
//     makes back to back with only coverage adds in between batch into
//     one kernel.StepN call.
//
// Observables stay byte-identical to the PR-9 block form. Iterations
// run in "careful" mode — per-statement coverage adds and the exact
// sequential charge pattern — until one iteration has executed every
// segment; from then on the (idempotent) covered-line set already holds
// every line a steady-state iteration can add, and lean iterations drop
// only those provably redundant adds while batching the charges they
// stood between. StepN clamps to the budget so watchdog-tripped boots
// land on exactly budget+1 steps, and a failing batched charge skips
// the statements it dominates exactly as the sequential charges would.
// Sub-expression closures (port I/O, macro guards, call machinery) are
// shared between both modes, so their side effects, faults and own
// coverage adds never diverge. Loops with direct break/continue/return
// in the body, and do/while loops, keep the PR-9 form.

// leanFn is one compiled simple statement in a superblock's steady
// state: error-only, no flow or value traffic.
type leanFn func(st *state, fr []Value) error

// predFn evaluates a loop condition to a bare bool.
type predFn func(st *state, fr []Value) (bool, error)

// superSimple reports whether a statement compiles to a lean run core:
// the flow-free simple kinds (the fusion rule's set minus
// break/continue/return).
func superSimple(s cast.Stmt) bool {
	switch s.(type) {
	case *cast.DeclStmt, *cast.ExprStmt, *cast.AssignStmt, *cast.IncDecStmt:
		return true
	}
	return false
}

// superCtl reports whether a statement can be a control segment: its
// compiled closure is reused as-is (self-covering, flow-carrying), so
// any nested control structure qualifies. Direct break/continue/return
// make the enclosing loop fall back — their flow is unconditional, so
// such a loop never reaches a steady state worth specializing.
func superCtl(s cast.Stmt) bool {
	switch s.(type) {
	case *cast.IfStmt, *cast.WhileStmt, *cast.DoWhileStmt, *cast.ForStmt,
		*cast.SwitchStmt, *cast.Block:
		return true
	}
	return false
}

// loopEligible reports whether a loop body (and for post) can compile
// to a superblock.
func (c *compiler) loopEligible(body, post cast.Stmt) bool {
	if post != nil && !superSimple(post) {
		return false
	}
	if b, ok := body.(*cast.Block); ok {
		for _, s := range b.Stmts {
			if !superSimple(s) && !superCtl(s) {
				return false
			}
		}
		return true
	}
	return superSimple(body) || superCtl(body)
}

// leanCore compiles one simple statement to its lean core and source
// line. The core carries everything but the statement-line coverage
// add; careful iterations wrap it with that add, lean iterations run it
// bare (the line is already covered). Sub-expression closures are
// shared between both forms, so their own coverage adds, guards and
// faults stay identical.
func (c *compiler) leanCore(s cast.Stmt) (int, leanFn) {
	line := c.line(s.Pos())
	// Mirror stmtBody's dominating-line dance so sub-expressions make
	// the same compile-time coverage-dedup decisions as the block form.
	prevDom := c.domLine
	c.domLine = line
	defer func() { c.domLine = prevDom }()
	switch s := s.(type) {
	case *cast.DeclStmt:
		d := s.Decl
		var initFn exprFn
		if d.Init != nil {
			initFn = c.expr(d.Init) // compiled before the name is visible
		}
		slot := c.declareLocal(d.Name, d.Type)
		typ := d.Type
		if initFn != nil {
			return line, func(st *state, fr []Value) error {
				iv, err := initFn(st, fr)
				if err != nil {
					return err
				}
				fr[slot] = cinterp.Truncate(typ, iv)
				return nil
			}
		}
		def := defaultValue(d.Type)
		return line, func(st *state, fr []Value) error {
			fr[slot] = def
			return nil
		}

	case *cast.ExprStmt:
		xf := c.expr(s.X)
		return line, func(st *state, fr []Value) error {
			_, err := xf(st, fr)
			return err
		}

	case *cast.AssignStmt:
		return line, c.leanAssign(s)

	case *cast.IncDecStmt:
		delta := int64(1)
		if s.Op == ctoken.MinusMinus {
			delta = -1
		}
		if ls, ok := c.lookupLocal(s.X.Name); ok {
			slot := ls.idx
			if tf := truncFn(ls.typ); tf != nil {
				return line, func(st *state, fr []Value) error {
					fr[slot] = intValue(tf(fr[slot].I + delta))
					return nil
				}
			}
			return line, func(st *state, fr []Value) error {
				fr[slot] = intValue(fr[slot].I + delta)
				return nil
			}
		}
		store := c.lvalue(s.X)
		return line, func(st *state, fr []Value) error {
			cell, err := store.load(st, fr)
			if err != nil {
				return err
			}
			store.store(st, fr, cinterp.Truncate(store.typ, intValue(cell.I+delta)))
			return nil
		}
	}

	// Unreachable for eligible statements; behave as the charged no-op
	// the block form compiles for unknown kinds.
	return line, func(st *state, fr []Value) error { return nil }
}

// leanAssign is assign/assignLocal with the statement-line coverage add
// and flow/value traffic stripped. Order and faults are identical.
func (c *compiler) leanAssign(s *cast.AssignStmt) leanFn {
	rhsFn := c.expr(s.RHS)
	if ls, ok := c.lookupLocal(s.LHS.Name); ok {
		if f := c.leanAssignLocal(s, rhsFn, ls); f != nil {
			return f
		}
	}
	target := c.lvalue(s.LHS)
	typ := target.typ
	if s.Op == ctoken.Assign {
		return func(st *state, fr []Value) error {
			rhs, err := rhsFn(st, fr)
			if err != nil {
				return err
			}
			cur, err := target.load(st, fr)
			if err != nil {
				return err
			}
			// Direct assignment: Devil values flow through unchanged.
			if cur.Kind == cinterp.ValDevil || rhs.Kind == cinterp.ValDevil {
				target.store(st, fr, rhs)
			} else {
				target.store(st, fr, cinterp.Truncate(typ, intValue(rhs.I)))
			}
			return nil
		}
	}
	op := compoundOp(s.Op)
	if op == nil {
		badOp := s.Op
		return func(st *state, fr []Value) error {
			rhs, err := rhsFn(st, fr)
			if err != nil {
				return err
			}
			if _, err := target.load(st, fr); err != nil {
				return err
			}
			_ = rhs
			return badAssignOpErr(badOp)
		}
	}
	return func(st *state, fr []Value) error {
		rhs, err := rhsFn(st, fr)
		if err != nil {
			return err
		}
		cur, err := target.load(st, fr)
		if err != nil {
			return err
		}
		target.store(st, fr, cinterp.Truncate(typ, intValue(op(cur.I, rhs.I))))
		return nil
	}
}

// leanAssignLocal is assignLocal's lean twin. Returns nil for compound
// operators outside the known set (the generic lean path owns the
// bad-operator fault).
func (c *compiler) leanAssignLocal(s *cast.AssignStmt, rhsFn exprFn, ls localSlot) leanFn {
	slot, typ := ls.idx, ls.typ
	tf := truncFn(typ)
	if s.Op == ctoken.Assign {
		if tf == nil {
			return func(st *state, fr []Value) error {
				rhs, err := rhsFn(st, fr)
				if err != nil {
					return err
				}
				if fr[slot].Kind == cinterp.ValDevil || rhs.Kind == cinterp.ValDevil {
					fr[slot] = rhs
				} else {
					fr[slot] = intValue(rhs.I)
				}
				return nil
			}
		}
		return func(st *state, fr []Value) error {
			rhs, err := rhsFn(st, fr)
			if err != nil {
				return err
			}
			if fr[slot].Kind == cinterp.ValDevil || rhs.Kind == cinterp.ValDevil {
				fr[slot] = rhs
			} else {
				fr[slot] = intValue(tf(rhs.I))
			}
			return nil
		}
	}
	var base ctoken.Kind
	switch s.Op {
	case ctoken.OrAssign:
		base = ctoken.Or
	case ctoken.AndAssign:
		base = ctoken.And
	case ctoken.XorAssign:
		base = ctoken.Xor
	case ctoken.ShlAssign:
		base = ctoken.Shl
	case ctoken.ShrAssign:
		base = ctoken.Shr
	case ctoken.AddAssign:
		base = ctoken.Add
	case ctoken.SubAssign:
		base = ctoken.Sub
	default:
		return nil
	}
	opf := intBinOp(base)
	if tf == nil {
		return func(st *state, fr []Value) error {
			rhs, err := rhsFn(st, fr)
			if err != nil {
				return err
			}
			fr[slot] = intValue(opf(fr[slot].I, rhs.I))
			return nil
		}
	}
	return func(st *state, fr []Value) error {
		rhs, err := rhsFn(st, fr)
		if err != nil {
			return err
		}
		fr[slot] = intValue(tf(opf(fr[slot].I, rhs.I)))
		return nil
	}
}

// compoundOp resolves a compound assignment operator to its integer
// implementation (the assign closure's switch), nil outside the set.
func compoundOp(op ctoken.Kind) func(a, b int64) int64 {
	switch op {
	case ctoken.OrAssign:
		return func(a, b int64) int64 { return a | b }
	case ctoken.AndAssign:
		return func(a, b int64) int64 { return a & b }
	case ctoken.XorAssign:
		return func(a, b int64) int64 { return a ^ b }
	case ctoken.ShlAssign:
		return func(a, b int64) int64 { return a << uint(b&63) }
	case ctoken.ShrAssign:
		return func(a, b int64) int64 { return a >> uint(b&63) }
	case ctoken.AddAssign:
		return func(a, b int64) int64 { return a + b }
	case ctoken.SubAssign:
		return func(a, b int64) int64 { return a - b }
	}
	return nil
}

func badAssignOpErr(op ctoken.Kind) error {
	return &kernel.CrashError{Cause: fmt.Errorf("bad assignment operator %s", op)}
}

// predOf compiles a loop condition to a specialized bool predicate for
// steady-state iterations, or nil when only the generic wrap applies.
// Specializations are restricted to shapes whose coverage adds are the
// same fixed lines every evaluation — all already in the covered set
// after the first careful condition evaluation — so dropping them is
// unobservable. Guards (macro declsReady/depth) and faults are
// preserved inline.
func (c *compiler) predOf(x cast.Expr) predFn {
	switch x := x.(type) {
	case *cast.IntLit:
		t := x.Value != 0
		return func(st *state, fr []Value) (bool, error) { return t, nil }

	case *cast.Ident:
		if ls, ok := c.lookupLocal(x.Name); ok {
			slot := ls.idx
			return func(st *state, fr []Value) (bool, error) {
				return fr[slot].Truthy(), nil
			}
		}

	case *cast.UnaryExpr:
		if x.Op == ctoken.Not {
			if inner := c.predOf(x.X); inner != nil {
				return func(st *state, fr []Value) (bool, error) {
					ok, err := inner(st, fr)
					if err != nil {
						return false, err
					}
					return !ok, nil
				}
			}
		}

	case *cast.BinaryExpr:
		f := intBinOp(x.Op)
		if f == nil {
			return nil
		}
		xo, xok := c.fuseOperand(x.X)
		yo, yok := c.fuseOperand(x.Y)
		if xok && yok {
			return func(st *state, fr []Value) (bool, error) {
				a, b := xo.v, yo.v
				if xo.slot >= 0 {
					a = fr[xo.slot].I
				} else if xo.guarded && (xo.ord >= st.declsReady || st.depth >= maxCallDepth) {
					var err error
					if a, err = evalFused(st, fr, &xo); err != nil {
						return false, err
					}
				}
				if yo.slot >= 0 {
					b = fr[yo.slot].I
				} else if yo.guarded && (yo.ord >= st.declsReady || st.depth >= maxCallDepth) {
					var err error
					if b, err = evalFused(st, fr, &yo); err != nil {
						return false, err
					}
				}
				return f(a, b) != 0, nil
			}
		}
		// One or both operands are arithmetic over locals and literals
		// (`w < (len + 1) / 2`): evaluate them with error-free pure
		// evaluators. The general binary machinery's coverage adds in
		// such a subtree are all fixed lines, covered by the first
		// careful condition evaluation.
		xp, yp := c.pureIntOf(x.X), c.pureIntOf(x.Y)
		if xp != nil && yp != nil {
			return func(st *state, fr []Value) (bool, error) {
				return f(xp(fr), yp(fr)) != 0, nil
			}
		}
		if xp != nil && yok {
			return func(st *state, fr []Value) (bool, error) {
				b := yo.v
				if yo.slot >= 0 {
					b = fr[yo.slot].I
				} else if yo.guarded && (yo.ord >= st.declsReady || st.depth >= maxCallDepth) {
					var err error
					if b, err = evalFused(st, fr, &yo); err != nil {
						return false, err
					}
				}
				return f(xp(fr), b) != 0, nil
			}
		}
		if yp != nil && xok {
			return func(st *state, fr []Value) (bool, error) {
				a := xo.v
				if xo.slot >= 0 {
					a = fr[xo.slot].I
				} else if xo.guarded && (xo.ord >= st.declsReady || st.depth >= maxCallDepth) {
					var err error
					if a, err = evalFused(st, fr, &xo); err != nil {
						return false, err
					}
				}
				return f(a, yp(fr)) != 0, nil
			}
		}
	}
	return nil
}

// pureIntOf compiles an expression into an error-free int evaluator,
// or nil when it cannot: only integer literals, local reads and pure
// arithmetic qualify. Division and modulo are admitted only by a
// positive literal divisor (matching applyBin without its
// divide-by-zero fault); macros, globals and calls never qualify
// (guards, mutation, side effects). Every coverage line in a qualifying
// subtree is fixed at compile time, so the first careful evaluation of
// the enclosing condition covers them all.
func (c *compiler) pureIntOf(x cast.Expr) func(fr []Value) int64 {
	switch x := x.(type) {
	case *cast.IntLit:
		v := x.Value
		return func(fr []Value) int64 { return v }

	case *cast.Ident:
		if ls, ok := c.lookupLocal(x.Name); ok {
			slot := ls.idx
			return func(fr []Value) int64 { return fr[slot].I }
		}

	case *cast.BinaryExpr:
		var f func(a, b int64) int64
		if x.Op == ctoken.Div || x.Op == ctoken.Mod {
			lit, ok := x.Y.(*cast.IntLit)
			if !ok || lit.Value <= 0 {
				return nil
			}
			if x.Op == ctoken.Mod {
				f = func(a, b int64) int64 { return a % b }
			} else {
				f = func(a, b int64) int64 { return a / b }
			}
		} else {
			f = intBinOp(x.Op)
		}
		if f == nil {
			return nil
		}
		xf := c.pureIntOf(x.X)
		if xf == nil {
			return nil
		}
		yf := c.pureIntOf(x.Y)
		if yf == nil {
			return nil
		}
		return func(fr []Value) int64 { return f(xf(fr), yf(fr)) }
	}
	return nil
}

// genericPred wraps the careful condition closure: full coverage adds
// and side effects (port reads in poll conditions), just the Value
// boxing stripped at the call site.
func genericPred(f exprFn) predFn {
	return func(st *state, fr []Value) (bool, error) {
		v, err := f(st, fr)
		if err != nil {
			return false, err
		}
		return v.Truthy(), nil
	}
}

// superSeg is one per-iteration unit of a superblock body: either a
// maximal run of simple statements (run non-nil) or one control-flow
// statement. Each segment costs exactly one watchdog charge, as in seq.
type superSeg struct {
	run        []leanFn // lean cores, statement-line adds dropped
	runCareful []leanFn // cov-adding twins for careful iterations
	ctl        stmtFn   // lean control form (flattened if)
	ctlCareful stmtFn   // careful form (adds the statement line)
}

// superBlock is a compiled superblock loop body.
type superBlock struct {
	// blockLine is the body block's own coverage line, -1 for a bare
	// statement body.
	blockLine int
	segs      []superSeg
	// headN is the watchdog charge count a lean iteration batches up
	// front: the block charge (if the body is a block) plus the first
	// segment's charge.
	headN int64
}

// superBodyOf compiles an eligible loop body, sharing frame slots and
// sub-expression closures between the careful and lean forms.
func (c *compiler) superBodyOf(body cast.Stmt) *superBlock {
	sb := &superBlock{blockLine: -1}
	stmts := []cast.Stmt{body}
	if b, ok := body.(*cast.Block); ok {
		sb.blockLine = c.line(b.Pos())
		c.pushScope()
		defer c.popScope()
		stmts = b.Stmts
	}
	var run, runCareful []leanFn
	flush := func() {
		if len(run) == 0 {
			return
		}
		if sb.blockLine >= 0 {
			// Count the fused run like seq would.
			c.stats.Blocks++
			c.stats.FusedStmts += int64(len(run))
		}
		c.stats.SuperStmts += int64(len(run))
		sb.segs = append(sb.segs, superSeg{run: run, runCareful: runCareful})
		run, runCareful = nil, nil
	}
	for _, s := range stmts {
		if superSimple(s) {
			line, core := c.leanCore(s)
			run = append(run, core)
			l, f := line, core
			runCareful = append(runCareful, func(st *state, fr []Value) error {
				st.cov.Add(l)
				return f(st, fr)
			})
			continue
		}
		flush()
		careful, lean := c.ctlSeg(s)
		sb.segs = append(sb.segs, superSeg{ctl: lean, ctlCareful: careful})
	}
	flush()
	sb.headN = 1
	if sb.blockLine >= 0 && len(sb.segs) > 0 {
		sb.headN = 2
	}
	return sb
}

// ctlSeg compiles one control statement into its careful and lean
// segment forms. An if statement flattens: the lean form drops only the
// statement-line coverage add and the per-iteration closure hop; its
// condition closure and branch statements are the standard compiled
// forms (branches are the cold loop-exit path and keep their own
// charges). Every other control kind reuses its stmtBody closure as-is
// — self-covering and exact — in both modes.
func (c *compiler) ctlSeg(s cast.Stmt) (careful, lean stmtFn) {
	ifs, ok := s.(*cast.IfStmt)
	if !ok {
		f := c.stmtBody(s)
		return f, f
	}
	line := c.line(ifs.Pos())
	prevDom := c.domLine
	c.domLine = line
	condFn := c.expr(ifs.Cond)
	thenFn := c.stmt(ifs.Then)
	var elseFn stmtFn
	if ifs.Else != nil {
		elseFn = c.stmt(ifs.Else)
	}
	c.domLine = prevDom
	lean = func(st *state, fr []Value) (flow, Value, error) {
		cond, err := condFn(st, fr)
		if err != nil {
			return flowNormal, voidValue, err
		}
		if cond.Truthy() {
			return thenFn(st, fr)
		}
		if elseFn != nil {
			return elseFn(st, fr)
		}
		return flowNormal, voidValue, nil
	}
	careful = func(st *state, fr []Value) (flow, Value, error) {
		st.cov.Add(line)
		return lean(st, fr)
	}
	return careful, lean
}

// carefulIter runs one iteration of the body with the PR-9 block form's
// exact sequential charges and coverage adds. The returned flow is the
// loop-level outcome (flowNormal proceeds to post/end, flowContinue
// already folded into it); done reports that every segment completed,
// licensing lean iterations from the next one on.
func (sb *superBlock) carefulIter(st *state, fr []Value) (fl flow, v Value, done bool, err error) {
	if err := st.kern.Step(); err != nil { // the body statement's charge
		return flowNormal, voidValue, false, err
	}
	if sb.blockLine >= 0 {
		st.cov.Add(sb.blockLine)
	}
	for i := range sb.segs {
		if i > 0 || sb.blockLine >= 0 {
			if err := st.kern.Step(); err != nil { // the segment's charge
				return flowNormal, voidValue, false, err
			}
		}
		s := &sb.segs[i]
		if s.run != nil {
			for _, f := range s.runCareful {
				if err := f(st, fr); err != nil {
					return flowNormal, voidValue, false, err
				}
			}
			continue
		}
		fl, v, err := s.ctlCareful(st, fr)
		if err != nil {
			return flowNormal, voidValue, false, err
		}
		switch fl {
		case flowBreak:
			return flowBreak, voidValue, false, nil
		case flowReturn:
			return flowReturn, v, false, nil
		case flowContinue:
			return flowNormal, voidValue, false, nil
		}
	}
	return flowNormal, voidValue, true, nil
}

// leanIter runs one steady-state iteration: the head charges batched
// into one StepN, lean segment forms, redundant coverage adds dropped.
func (sb *superBlock) leanIter(st *state, fr []Value, head int64) (flow, Value, error) {
	if err := st.kern.StepN(head); err != nil {
		return flowNormal, voidValue, err
	}
	for i := range sb.segs {
		if i > 0 {
			if err := st.kern.Step(); err != nil { // the segment's charge
				return flowNormal, voidValue, err
			}
		}
		s := &sb.segs[i]
		if s.run != nil {
			for _, f := range s.run {
				if err := f(st, fr); err != nil {
					return flowNormal, voidValue, err
				}
			}
			continue
		}
		fl, v, err := s.ctl(st, fr)
		if err != nil {
			return flowNormal, voidValue, err
		}
		if fl != flowNormal {
			if fl == flowContinue {
				fl = flowNormal
			}
			return fl, v, nil
		}
	}
	return flowNormal, voidValue, nil
}

// whileSuper compiles an eligible while loop to a superblock closure.
// The caller has checked eligibility; line is the loop statement's line.
func (c *compiler) whileSuper(s *cast.WhileStmt, line int) stmtFn {
	condFn := c.expr(s.Cond)
	pred := c.predOf(s.Cond)
	if pred == nil {
		pred = genericPred(condFn)
	}
	sb := c.superBodyOf(s.Body)
	c.stats.Superblocks++
	head := sb.headN
	endCharge := len(sb.segs) > 0
	if !endCharge {
		head++ // fold the end charge: nothing runs between the charges
	}
	return func(st *state, fr []Value) (flow, Value, error) {
		st.cov.Add(line)
		// The first condition evaluation is always the careful closure;
		// it covers every fixed line a specialized pred may skip.
		cond, err := condFn(st, fr)
		if err != nil {
			return flowNormal, voidValue, err
		}
		ok := cond.Truthy()
		careful := true
		for ok {
			var fl flow
			var v Value
			if careful {
				var done bool
				fl, v, done, err = sb.carefulIter(st, fr)
				if err != nil {
					return flowNormal, voidValue, err
				}
				if fl == flowBreak {
					return flowNormal, voidValue, nil
				}
				if fl == flowReturn {
					return flowReturn, v, nil
				}
				if err := st.kern.Step(); err != nil { // end-of-iteration charge
					return flowNormal, voidValue, err
				}
				careful = !done
			} else {
				fl, v, err = sb.leanIter(st, fr, head)
				if err != nil {
					return flowNormal, voidValue, err
				}
				if fl == flowBreak {
					return flowNormal, voidValue, nil
				}
				if fl == flowReturn {
					return flowReturn, v, nil
				}
				if endCharge {
					if err := st.kern.Step(); err != nil { // end-of-iteration charge
						return flowNormal, voidValue, err
					}
				}
			}
			ok, err = pred(st, fr)
			if err != nil {
				return flowNormal, voidValue, err
			}
		}
		return flowNormal, voidValue, nil
	}
}

// forSuper compiles an eligible for loop to a superblock closure. The
// init statement runs once through the careful machinery; cond, body
// and post get the while treatment, with the post's
// charge/post/charge tail batched when the post is a pure local update.
func (c *compiler) forSuper(s *cast.ForStmt, line int) stmtFn {
	c.pushScope() // the init declaration's scope, as in the interpreter
	var initFn stmtFn
	if s.Init != nil {
		initFn = c.stmt(s.Init)
	}
	var condFn exprFn
	pred := predFn(func(st *state, fr []Value) (bool, error) { return true, nil })
	if s.Cond != nil {
		condFn = c.expr(s.Cond)
		if p := c.predOf(s.Cond); p != nil {
			pred = p
		} else {
			pred = genericPred(condFn)
		}
	}
	sb := c.superBodyOf(s.Body)
	var postCore leanFn
	postLine := -1
	purePost := false
	if s.Post != nil {
		postLine, postCore = c.leanCore(s.Post)
		// A post that increments a local slot touches no device, kernel
		// or coverage state, so it commutes with its surrounding watchdog
		// charges and the post + end charges batch into one StepN after
		// it. Anything else keeps sequential charges.
		if id, ok := s.Post.(*cast.IncDecStmt); ok {
			_, purePost = c.lookupLocal(id.X.Name)
		}
		c.stats.SuperStmts++
	}
	c.popScope()
	c.stats.Superblocks++
	head := sb.headN
	if len(sb.segs) == 0 && postCore == nil {
		head++ // fold the end charge: nothing runs between the charges
	}
	return func(st *state, fr []Value) (flow, Value, error) {
		st.cov.Add(line)
		if initFn != nil {
			if fl, v, err := initFn(st, fr); err != nil || fl != flowNormal {
				return fl, v, err
			}
		}
		ok := true
		if condFn != nil {
			// First evaluation careful, as in whileSuper.
			cond, err := condFn(st, fr)
			if err != nil {
				return flowNormal, voidValue, err
			}
			ok = cond.Truthy()
		}
		careful := true
		for ok {
			var err error
			if careful {
				fl, v, done, err := sb.carefulIter(st, fr)
				if err != nil {
					return flowNormal, voidValue, err
				}
				if fl == flowBreak {
					return flowNormal, voidValue, nil
				}
				if fl == flowReturn {
					return flowReturn, v, nil
				}
				if postCore != nil {
					// Sequential post: charge, cover, update, as the block
					// form's chargeWrap(post) would.
					if err := st.kern.Step(); err != nil {
						return flowNormal, voidValue, err
					}
					st.cov.Add(postLine)
					if err := postCore(st, fr); err != nil {
						return flowNormal, voidValue, err
					}
				}
				if err := st.kern.Step(); err != nil { // end-of-iteration charge
					return flowNormal, voidValue, err
				}
				careful = !done
			} else {
				fl, v, err := sb.leanIter(st, fr, head)
				if err != nil {
					return flowNormal, voidValue, err
				}
				if fl == flowBreak {
					return flowNormal, voidValue, nil
				}
				if fl == flowReturn {
					return flowReturn, v, nil
				}
				switch {
				case postCore == nil:
					if len(sb.segs) > 0 { // else folded into head
						if err := st.kern.Step(); err != nil { // end-of-iteration charge
							return flowNormal, voidValue, err
						}
					}
				case purePost:
					// The post commutes with its charges: run it, then batch
					// the post + end charges in one StepN.
					if err := postCore(st, fr); err != nil {
						return flowNormal, voidValue, err
					}
					if err := st.kern.StepN(2); err != nil {
						return flowNormal, voidValue, err
					}
				default:
					if err := st.kern.Step(); err != nil { // the post's charge
						return flowNormal, voidValue, err
					}
					if err := postCore(st, fr); err != nil {
						return flowNormal, voidValue, err
					}
					if err := st.kern.Step(); err != nil { // end-of-iteration charge
						return flowNormal, voidValue, err
					}
				}
			}
			ok, err = pred(st, fr)
			if err != nil {
				return flowNormal, voidValue, err
			}
		}
		return flowNormal, voidValue, nil
	}
}
