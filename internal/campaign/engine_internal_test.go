package campaign

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- store retry --------------------------------------------------------

// trivialWorkload is one driver, two mutants, fixed outcome — the
// smallest campaign that exercises the append path.
type trivialWorkload struct{}

func (trivialWorkload) Expand(spec Spec) ([]Meta, []Task, error) {
	return []Meta{{Driver: "d", Enumerated: 2, Selected: 2}},
		[]Task{{Driver: "d", Mutant: 0}, {Driver: "d", Mutant: 1}}, nil
}
func (trivialWorkload) NewWorker(Spec) (Worker, error) { return trivialWorker{}, nil }

type trivialWorker struct{}

func (trivialWorker) Boot(t Task) (Outcome, error) { return Outcome{Row: "Boot"}, nil }
func (trivialWorker) Close()                       {}

// glitchStore fails the first failures appends, then behaves.
type glitchStore struct {
	mu       sync.Mutex
	failures int
	recs     []Record
}

func (s *glitchStore) Append(r Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failures > 0 {
		s.failures--
		return errors.New("transient store glitch")
	}
	s.recs = append(s.recs, r)
	return nil
}

func (s *glitchStore) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Record(nil), s.recs...)
}

func (s *glitchStore) Close() error { return nil }

// swapSleep replaces the retry backoff sleep with a counter for the
// duration of one test, so retries are observable and instant.
func swapSleep(t *testing.T) *int {
	t.Helper()
	slept := 0
	prev := storeSleep
	storeSleep = func(time.Duration) { slept++ }
	t.Cleanup(func() { storeSleep = prev })
	return &slept
}

// TestStoreAppendRetriesTransientFailure: a store that fails twice and
// recovers must not abort the campaign — the append is retried with
// backoff and every record still lands.
func TestStoreAppendRetriesTransientFailure(t *testing.T) {
	slept := swapSleep(t)
	store := &glitchStore{failures: 2}
	sum, err := Run(Spec{Name: "r", Drivers: []string{"d"}, Seed: 1}, trivialWorkload{}, store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Ran != 2 {
		t.Errorf("ran = %d, want 2", sum.Ran)
	}
	if *slept != 2 {
		t.Errorf("backoff sleeps = %d, want 2 (one per transient failure)", *slept)
	}
	results := 0
	for _, r := range store.Records() {
		if r.Kind == KindResult {
			results++
		}
	}
	if results != 2 {
		t.Errorf("stored results = %d, want 2", results)
	}
}

// TestStoreAppendGivesUpAfterBackoff: a persistently failing store
// aborts the run with an error naming the attempt count, after
// exhausting the whole backoff schedule.
func TestStoreAppendGivesUpAfterBackoff(t *testing.T) {
	slept := swapSleep(t)
	store := &glitchStore{failures: 1 << 30}
	_, err := Run(Spec{Name: "r", Drivers: []string{"d"}, Seed: 1}, trivialWorkload{}, store, Options{})
	if err == nil {
		t.Fatal("persistently failing store did not abort the run")
	}
	want := fmt.Sprintf("after %d attempts", len(storeBackoff)+1)
	if !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not report %q", err, want)
	}
	if *slept < len(storeBackoff) {
		t.Errorf("backoff sleeps = %d, want at least %d", *slept, len(storeBackoff))
	}
}

// --- expandMatrix -------------------------------------------------------

func TestExpandMatrix(t *testing.T) {
	metas := []Meta{{Driver: "a", Selected: 2}}
	tasks := []Task{
		{Driver: "a", Mutant: 0, Dedup: "g0"},
		{Driver: "a", Mutant: 1, Dedup: "g0"},
	}

	// No scenarios: exact passthrough, same slices.
	m, ts := expandMatrix(Spec{}, metas, tasks)
	if !reflect.DeepEqual(m, metas) || !reflect.DeepEqual(ts, tasks) {
		t.Error("pristine-only spec did not pass through untouched")
	}

	m, ts = expandMatrix(Spec{Scenarios: []string{"", "flaky"}}, metas, tasks)
	if len(m) != 2 || len(ts) != 4 {
		t.Fatalf("matrix sizes = %d metas / %d tasks, want 2/4", len(m), len(ts))
	}
	// Scenario-major order: the whole pristine cell, then the flaky cell.
	wantTasks := []Task{
		{Driver: "a", Mutant: 0, Dedup: "g0"},
		{Driver: "a", Mutant: 1, Dedup: "g0"},
		{Driver: "a", Mutant: 0, Scenario: "flaky"}, // dedup cleared off-pristine
		{Driver: "a", Mutant: 1, Scenario: "flaky"},
	}
	if !reflect.DeepEqual(ts, wantTasks) {
		t.Errorf("matrix tasks:\ngot  %+v\nwant %+v", ts, wantTasks)
	}
	if m[0].Scenario != "" || m[1].Scenario != "flaky" {
		t.Errorf("meta scenarios = %q, %q", m[0].Scenario, m[1].Scenario)
	}
}

// TestCellKeyAndShardStability pins the compatibility contract: the
// pristine cell keeps the historical driver#mutant key (so pre-matrix
// stores resume byte-compatibly) and scenario cells extend it; sharding
// hashes the full cell key so one mutant's cells can land on different
// shards without ever crossing its pristine placement.
func TestCellKeyAndShardStability(t *testing.T) {
	pristine := Task{Driver: "ide", Mutant: 7}
	if got := pristine.Key(); got != "ide#7" {
		t.Errorf("pristine key = %q, want the historical ide#7", got)
	}
	flaky := Task{Driver: "ide", Mutant: 7, Scenario: "flaky-bus:10"}
	if got := flaky.Key(); got != "ide#7@flaky-bus:10" {
		t.Errorf("scenario key = %q", got)
	}
	if pristine.FaultSeed() == flaky.FaultSeed() {
		t.Error("fault seed ignores the scenario")
	}
	if ShardOfTask(pristine, 8) != ShardOfTask(Task{Driver: "ide", Mutant: 7}, 8) {
		t.Error("sharding is not a pure function of the task")
	}
	if CellLabel("ide", "") != "ide" || CellLabel("ide", "flaky") != "ide@flaky" {
		t.Errorf("cell labels = %q / %q", CellLabel("ide", ""), CellLabel("ide", "flaky"))
	}
}
