package ccompile_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cdriver/ccheck"
	"repro/internal/cdriver/ccompile"
	"repro/internal/cdriver/ccov"
	"repro/internal/cdriver/cinterp"
	"repro/internal/cdriver/cparser"
	"repro/internal/cdriver/ctypes"
	"repro/internal/hw"
	"repro/internal/kernel"
)

// rig is one freshly assembled plain-C execution context.
type rig struct {
	kern *kernel.Kernel
	bus  *hw.Bus
}

func newRig() *rig {
	bus := hw.NewBus()
	bus.SetFloating(true)
	return &rig{kern: kernel.New(&hw.Clock{}), bus: bus}
}

// outcome captures everything observable about one call on one backend.
type outcome struct {
	val     cinterp.Value
	errText string
	console []string
	cov     *ccov.Set
	steps   int64
}

// runBoth executes fn on the interpreter and both compiled backends
// (per-statement and block-fused) and requires identical observable
// results, returning the (shared) outcome.
func runBoth(t *testing.T, src, fn string, args ...cinterp.Value) outcome {
	t.Helper()
	prog, perrs := cparser.Parse(src)
	if len(perrs) != 0 {
		t.Fatalf("parse: %v", perrs)
	}
	env := ctypes.NewEnv(false)
	if cerrs := ccheck.Check(prog, env); len(cerrs) != 0 {
		t.Fatalf("check: %v", cerrs)
	}

	interpRig := newRig()
	in, ierr := cinterp.New(prog, env, interpRig.kern, interpRig.bus, nil)

	backends := []struct {
		name    string
		compile func(*rig) (*ccompile.Proc, error)
	}{
		{"compiled", func(r *rig) (*ccompile.Proc, error) {
			return ccompile.Compile(prog, r.kern, r.bus, nil, nil)
		}},
		{"block", func(r *rig) (*ccompile.Proc, error) {
			return ccompile.CompileBlocks(prog, r.kern, r.bus, nil, nil)
		}},
	}
	var out outcome
	for _, b := range backends {
		compRig := newRig()
		p, cerr := b.compile(compRig)
		if cerr != nil {
			t.Fatalf("%s: compile: %v", b.name, cerr)
		}
		perr := p.Init()

		if (ierr == nil) != (perr == nil) || (ierr != nil && ierr.Error() != perr.Error()) {
			t.Fatalf("%s: init divergence: interp=%v compiled=%v", b.name, ierr, perr)
		}
		if ierr != nil {
			out = outcome{errText: ierr.Error()}
			continue
		}

		iv, ie := in.Call(fn, args...)
		cv, ce := p.Call(fn, args...)
		if (ie == nil) != (ce == nil) || (ie != nil && ie.Error() != ce.Error()) {
			t.Fatalf("%s: error divergence: interp=%v compiled=%v", b.name, ie, ce)
		}
		if ie == nil && iv != cv {
			t.Fatalf("%s: value divergence: interp=%+v compiled=%+v", b.name, iv, cv)
		}
		if ic, cc := interpRig.kern.Console(), compRig.kern.Console(); strings.Join(ic, "\n") != strings.Join(cc, "\n") {
			t.Fatalf("%s: console divergence:\ninterp:   %q\ncompiled: %q", b.name, ic, cc)
		}
		// Compare coverage through the CoveredLines iterator both backends
		// expose, then through the bitset equality the hot path uses.
		var iLines, cLines []int
		for line := range in.CoveredLines() {
			iLines = append(iLines, line)
		}
		for line := range p.CoveredLines() {
			cLines = append(cLines, line)
		}
		if !in.Coverage().Equal(p.Coverage()) || len(iLines) != len(cLines) {
			t.Fatalf("%s: coverage divergence: interp=%v compiled=%v", b.name, iLines, cLines)
		}
		if is, cs := interpRig.kern.Steps(), compRig.kern.Steps(); is != cs {
			t.Fatalf("%s: step divergence: interp=%d compiled=%d", b.name, is, cs)
		}
		var errText string
		if ie != nil {
			errText = ie.Error()
		}
		out = outcome{val: cv, errText: errText, console: compRig.kern.Console(),
			cov: p.Coverage(), steps: compRig.kern.Steps()}

		// The interpreter's per-call state is compared against each
		// backend in turn; rewind it so the next backend sees the same
		// reference run.
		if len(backends) > 1 && b.name != backends[len(backends)-1].name {
			interpRig = newRig()
			in, ierr = cinterp.New(prog, env, interpRig.kern, interpRig.bus, nil)
		}
	}
	return out
}

func callInt(t *testing.T, src, fn string, args ...cinterp.Value) int64 {
	t.Helper()
	o := runBoth(t, src, fn, args...)
	if o.errText != "" {
		t.Fatalf("call failed: %s", o.errText)
	}
	return o.val.I
}

func TestArithmeticAndTruncation(t *testing.T) {
	tests := []struct {
		expr string
		want int64
	}{
		{"1 + 2 * 3", 7},
		{"0x10 | 0x01", 0x11},
		{"1 << 4", 16},
		{"256 >> 4", 16},
		{"7 % 3", 1},
		{"~0 & 0xff", 0xff},
		{"!5", 0},
		{"-5 + 3", -2},
		{"3 == 3", 1},
		{"1 && 2", 1},
		{"0 ? 10 : 20", 20},
		{"(u8) 0x1ff", 0xff},
		{"(s8) 0xff", -1},
	}
	for _, tt := range tests {
		src := "int f(void) { return " + tt.expr + "; }"
		if got := callInt(t, src, "f"); got != tt.want {
			t.Errorf("%s = %d, want %d", tt.expr, got, tt.want)
		}
	}
}

func TestDeclaredTypeTruncationOnStore(t *testing.T) {
	src := `
int f(void) {
	u8 x;
	x = 300;
	x += 1;
	return x;
}`
	if got := callInt(t, src, "f"); got != 45 {
		t.Errorf("u8 store chain = %d, want 45", got)
	}
}

func TestScopeShadowingAndLoops(t *testing.T) {
	src := `
int g;
int f(void) {
	int x = 1;
	int sum = 0;
	{
		int x = 10;
		sum += x;
	}
	sum += x;
	for (int i = 0; i < 4; i++) {
		int x = i;
		if (x == 2) { continue; }
		sum += x;
	}
	while (x < 5) { x++; }
	do { x--; } while (x > 3);
	g = sum;
	return sum * 100 + x;
}`
	// sum = 10 + 1 + (0+1+3) = 15; x ends at 3.
	if got := callInt(t, src, "f"); got != 1503 {
		t.Errorf("f = %d, want 1503", got)
	}
}

func TestSwitchSemantics(t *testing.T) {
	src := `
int f(int x) {
	int r = 0;
	switch (x) {
	case 1: r = 10; break;
	case 2:
	case 3: r = 23; break;
	default: r = 99;
	}
	return r;
}`
	for _, tt := range []struct{ in, want int64 }{{1, 10}, {2, 23}, {3, 23}, {7, 99}} {
		if got := callInt(t, src, "f", cinterp.IntValue(tt.in)); got != tt.want {
			t.Errorf("f(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestMacrosAndGlobals(t *testing.T) {
	src := `
#define BASE 0x100
#define NEXT BASE + 8
int origin = BASE;
int f(void) { return NEXT + origin; }`
	if got := callInt(t, src, "f"); got != 0x100+8+0x100 {
		t.Errorf("f = %d", got)
	}
}

func TestRecursionOverflowMatchesInterpreter(t *testing.T) {
	src := `int f(int n) { return f(n + 1); }`
	o := runBoth(t, src, "f", cinterp.IntValue(0))
	if !strings.Contains(o.errText, `call stack overflow in "f"`) {
		t.Errorf("overflow error = %q", o.errText)
	}
}

func TestDivisionByZeroMatchesInterpreter(t *testing.T) {
	src := `int f(int n) { return 10 / n; }`
	o := runBoth(t, src, "f", cinterp.IntValue(0))
	if !strings.Contains(o.errText, "division by zero") {
		t.Errorf("error = %q", o.errText)
	}
}

func TestPrintkAndPanic(t *testing.T) {
	src := `
int f(void) {
	printk("val %d mask %x tail %%", 42, 255);
	panic("boom");
	return 0;
}`
	o := runBoth(t, src, "f")
	if !strings.Contains(o.errText, "kernel panic") {
		t.Errorf("panic error = %q", o.errText)
	}
	if len(o.console) == 0 || o.console[0] != "val 42 mask ff tail %" {
		t.Errorf("console = %q", o.console)
	}
}

func TestGlobalInitSelfReferenceFaults(t *testing.T) {
	// The checker registers a global before checking its initialiser, so
	// "int x = x + 1;" checks — and faults identically at insmod time on
	// both backends (runBoth diffs the init errors).
	o := runBoth(t, `int x = x + 1; int f(void) { return x; }`, "f")
	if !strings.Contains(o.errText, `use of undefined identifier "x"`) {
		t.Errorf("init error = %q", o.errText)
	}
}

func TestCoverageReflectsTakenBranches(t *testing.T) {
	src := `int f(int x) {
	if (x) {
		return 1;
	}
	return 2;
}`
	o := runBoth(t, src, "f", cinterp.IntValue(1))
	if !o.cov.Covered(3) {
		t.Error("taken branch (line 3) not covered")
	}
	if o.cov.Covered(5) {
		t.Error("untaken branch (line 5) covered")
	}
}

func TestRecursiveCallArgumentsAreIsolated(t *testing.T) {
	// Exercises the pooled argument buffers under recursion: every
	// activation must see its own arguments.
	src := `
int fib(int n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}`
	if got := callInt(t, src, "fib", cinterp.IntValue(12)); got != 144 {
		t.Errorf("fib(12) = %d, want 144", got)
	}
}

func TestMacroCycleIsUnsupported(t *testing.T) {
	// A macro expansion cycle (creatable only by exotic identifier
	// mutants) must be rejected with ErrUnsupported, not loop the
	// compiler forever; the caller then falls back to the interpreter.
	src := `
#define A B
#define B A
int f(void) { return A; }`
	prog, perrs := cparser.Parse(src)
	if len(perrs) != 0 {
		t.Fatalf("parse: %v", perrs)
	}
	r := newRig()
	_, err := ccompile.Compile(prog, r.kern, r.bus, nil, nil)
	if !errors.Is(err, ccompile.ErrUnsupported) {
		t.Fatalf("cyclic macro: err = %v, want ErrUnsupported", err)
	}
}

func TestMachReuseAcrossBoots(t *testing.T) {
	// One Mach pools stack, coverage and argument buffers across
	// compiles; the second boot must start from clean state.
	m := ccompile.NewMach()
	src := `int f(int n) { int acc = 0; while (n > 0) { acc += n; n--; } return acc; }`
	prog, perrs := cparser.Parse(src)
	if len(perrs) != 0 {
		t.Fatalf("parse: %v", perrs)
	}
	env := ctypes.NewEnv(false)
	if cerrs := ccheck.Check(prog, env); len(cerrs) != 0 {
		t.Fatalf("check: %v", cerrs)
	}
	var firstCov []int
	for i := 0; i < 3; i++ {
		r := newRig()
		p, err := ccompile.Compile(prog, r.kern, r.bus, nil, m)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Init(); err != nil {
			t.Fatal(err)
		}
		v, err := p.Call("f", cinterp.IntValue(10))
		if err != nil || v.I != 55 {
			t.Fatalf("boot %d: f(10) = %v, %v", i, v, err)
		}
		if i == 0 {
			firstCov = p.Coverage().Slice()
		} else if got := p.Coverage().Slice(); len(got) != len(firstCov) {
			t.Fatalf("boot %d coverage = %v, want %v", i, got, firstCov)
		}
	}
}
