package experiment

import (
	"bytes"
	"fmt"

	"repro/internal/cdriver/cinterp"
	"repro/internal/hw"
	"repro/internal/hw/ne2000"
)

// The NE2000 experiment adds the third driver pair: an interrupt- and
// DMA-heavy device family, exercising the banked register file, the
// remote-DMA engine and the receive ring of the simulated adapter. The
// boot is a kernel-audited packet round trip: probe the adapter through
// the reset latch, bring the core up in internal loopback, transmit a
// deterministic frame script via remote DMA, then drain the receive
// ring and compare every payload byte against what was sent. A frame
// that comes back corrupt, truncated or duplicated is visible damage —
// the network analogue of the busmouse's wild cursor.

// Bus assembly of the adapter at the conventional 0x300 base: the 16-port
// 8390 register file, the 16-bit remote-DMA data port, and the reset
// latch.
const (
	netRegBase   hw.Port = 0x300
	netDataBase  hw.Port = 0x310
	netResetBase hw.Port = 0x31f
)

// netMAC is the station address both drivers program into PAR0..5.
var netMAC = [6]byte{0x02, 0x11, 0x22, 0x33, 0x44, 0x55}

// netFrames is the deterministic frame script the simulated kernel
// transmits: broadcast Ethernet frames of assorted (even) lengths, small
// enough that each occupies one receive-ring page and the drain never
// wraps. The payload pattern varies per frame so a swapped or duplicated
// frame cannot compare clean.
var netFrames = buildNetFrames()

func buildNetFrames() [][]byte {
	sizes := []int{22, 60, 124, 242}
	frames := make([][]byte, len(sizes))
	for i, size := range sizes {
		f := make([]byte, size)
		for j := 0; j < 6; j++ {
			f[j] = 0xff // broadcast destination
		}
		copy(f[6:12], netMAC[:])
		f[12], f[13] = 0x08, 0x00
		for j := 14; j < size; j++ {
			f[j] = byte(i*31 + j*7)
		}
		frames[i] = f
	}
	return frames
}

var netWorkload = WorkloadDesc{
	Name:    "ne2000",
	Drivers: []string{"ne2000_c", "ne2000_devil"},
	Spec:    "ne2000",
	Bases: map[string]hw.Port{
		"reg":   netRegBase,
		"dma":   netDataBase,
		"reset": netResetBase,
	},
	Build: func(r *Rig) (any, error) {
		nic := ne2000.New()
		if err := r.Bus.Map(netRegBase, 16, nic.Registers()); err != nil {
			return nil, err
		}
		if err := r.Bus.Map(netDataBase, 1, nic.DataPort()); err != nil {
			return nil, err
		}
		if err := r.Bus.Map(netResetBase, 1, nic.ResetPort()); err != nil {
			return nil, err
		}
		return nic, nil
	},
	// ne2000.NIC.Reset is the cold power-on reset (packet memory
	// included), distinct from the warm reset the reset port performs.
	Reset: func(dev any) { dev.(*ne2000.NIC).Reset() },
	Snapshot: func(dev, snap any) any {
		s, _ := snap.(*ne2000.State)
		if s == nil {
			s = &ne2000.State{}
		}
		dev.(*ne2000.NIC).Snapshot(s)
		return s
	},
	Restore: func(dev, snap any) { dev.(*ne2000.NIC).Restore(snap.(*ne2000.State)) },
	Run:     runNetBoot,
}

// runNetBoot drives the packet round trip: initialise the driver, push
// the frame script through the transmit path (internal loopback delivers
// each frame into the receive ring), then drain the ring and audit every
// payload byte. The kernel — not the driver — holds the expected bytes,
// so a driver that corrupts, truncates, reorders or invents frames is
// caught as visible damage.
func runNetBoot(r *Rig, ex Engine, res *BootResult) (error, bool) {
	kern, nic := r.Kern, r.Dev.(*ne2000.NIC)
	ret, err := ex.Call("net_init")
	if err != nil {
		return err, false
	}
	if ret.Kind == cinterp.ValInt && ret.I != 0 {
		return kern.Panic("ne2000: initialisation failed"), false
	}
	if nic.MAC() != netMAC {
		kern.Printk("ne2000: warning: station address not programmed")
	}
	damaged := false
	for i, f := range netFrames {
		copy(kern.Buf(), f)
		v, err := ex.Call("net_send", cinterp.IntValue(int64(len(f))))
		if err != nil {
			return err, false
		}
		if v.Kind == cinterp.ValInt && v.I != 0 {
			kern.Printk(fmt.Sprintf("ne2000: frame %d transmit failed", i))
			damaged = true
		}
	}
	for i, f := range netFrames {
		v, err := ex.Call("net_recv")
		if err != nil {
			return err, false
		}
		if v.I != int64(len(f)) {
			kern.Printk(fmt.Sprintf(
				"ne2000: frame %d corrupt: got length %d, expected %d", i, v.I, len(f)))
			damaged = true
			continue
		}
		if !bytes.Equal(kern.Buf()[:len(f)], f) {
			kern.Printk(fmt.Sprintf("ne2000: frame %d payload corrupt", i))
			damaged = true
		}
	}
	v, err := ex.Call("net_recv")
	if err != nil {
		return err, false
	}
	if v.Kind == cinterp.ValInt && v.I != 0 {
		kern.Printk("ne2000: phantom frame after drain")
		damaged = true
	}
	kern.Printk("ne2000: packet round trip complete")
	return nil, damaged
}

// BootNet compiles and boots one NE2000 driver build on a freshly built
// rig. A compatibility wrapper over the generic BootDriver path.
func BootNet(input BootInput) (*BootResult, error) {
	return BootDriver("ne2000_c", input)
}

// BootNetOn compiles and boots one NE2000 driver build on m, which must
// be an NE2000 rig, freshly built or Reset. A compatibility wrapper over
// the generic BootOn path.
func BootNetOn(m *Rig, input BootInput) (*BootResult, error) {
	return BootOn(m, input)
}
