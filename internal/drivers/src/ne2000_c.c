/*
 * ne2000_c.c — traditional hand-written NE2000 (DP8390) Ethernet driver.
 *
 * Everything the Devil re-engineering derives from the specification is
 * spelled out by hand here: the banked page-0/page-1 register file behind
 * one command register, the remote-DMA start/count juggling, and the
 * word-at-a-time PIO through the data port. The workload is a probe,
 * frame transmission in internal loopback, and a receive-ring drain.
 */

//@hw
#define NE_CMD      0x300
#define NE_PSTART   0x301
#define NE_PSTOP    0x302
#define NE_BNRY     0x303
#define NE_TPSR     0x304
#define NE_TBCR0    0x305
#define NE_TBCR1    0x306
#define NE_ISR      0x307
#define NE_RSAR0    0x308
#define NE_RSAR1    0x309
#define NE_RBCR0    0x30a
#define NE_RBCR1    0x30b
#define NE_RCR      0x30c
#define NE_TCR      0x30d
#define NE_DCR      0x30e
#define NE_IMR      0x30f
#define NE_PAR0     0x301
#define NE_CURR     0x307
#define NE_DATAPORT 0x310
#define NE_RESET    0x31f

#define CMD_STOP    0x21
#define CMD_START   0x22
#define CMD_RREAD   0x0a
#define CMD_RWRITE  0x12
#define CMD_TRANS   0x26
#define CMD_PAGE1   0x62
#define CMD_PAGE1_STOP 0x61

#define ISR_PRX     0x01
#define ISR_PTX     0x02
#define ISR_RST     0x80

#define DCR_WORD    0x49
#define TCR_LOOP    0x02
#define RCR_BCAST   0x04

#define TX_PAGE     0x40
#define RING_START  0x46
#define RING_STOP   0x60

#define NET_TIMEOUT 20000
//@endhw

/* Bounded wait for transmit completion. */
static int tx_wait(void)
{
    int t;
    //@hw
    for (t = 0; t < NET_TIMEOUT; t++) {
        if (inb(NE_ISR) & ISR_PTX) {
            return 0;
        }
    }
    //@endhw
    return 1;
}

int net_init(void)
{
    //@hw
    outb(0xff, NE_RESET);
    if ((inb(NE_ISR) & ISR_RST) == 0) {
        printk("ne2000: no adapter found");
        return 1;
    }
    outb(CMD_STOP, NE_CMD);
    outb(DCR_WORD, NE_DCR);
    outb(0x00, NE_RBCR0);
    outb(0x00, NE_RBCR1);
    outb(RCR_BCAST, NE_RCR);
    outb(TCR_LOOP, NE_TCR);
    outb(RING_START, NE_PSTART);
    outb(RING_STOP, NE_PSTOP);
    outb(RING_START, NE_BNRY);
    outb(0xff, NE_ISR);
    outb(0x00, NE_IMR);
    outb(CMD_PAGE1_STOP, NE_CMD);
    outb(0x02, NE_PAR0);
    outb(0x11, NE_PAR0 + 1);
    outb(0x22, NE_PAR0 + 2);
    outb(0x33, NE_PAR0 + 3);
    outb(0x44, NE_PAR0 + 4);
    outb(0x55, NE_PAR0 + 5);
    outb(RING_START + 1, NE_CURR);
    outb(CMD_START, NE_CMD);
    //@endhw
    printk("ne2000: adapter up");
    return 0;
}

/* Transmit the len-byte frame in the kernel buffer: remote-DMA it into
 * the transmit page, then fire and wait for completion. */
int net_send(int len)
{
    int w;
    //@hw
    outb(CMD_START, NE_CMD);
    outb(0x00, NE_RSAR0);
    outb(TX_PAGE, NE_RSAR1);
    outb(len & 0xff, NE_RBCR0);
    outb(len >> 8, NE_RBCR1);
    outb(CMD_RWRITE, NE_CMD);
    for (w = 0; w < (len + 1) / 2; w++) {
        outw(kbuf_read16(w * 2), NE_DATAPORT);
    }
    outb(ISR_PTX, NE_ISR);
    outb(TX_PAGE, NE_TPSR);
    outb(len & 0xff, NE_TBCR0);
    outb(len >> 8, NE_TBCR1);
    outb(CMD_TRANS, NE_CMD);
    if (tx_wait()) {
        printk("ne2000: transmit timeout");
        return 1;
    }
    //@endhw
    return 0;
}

/* Drain one frame from the receive ring into the kernel buffer. Returns
 * the payload length, 0 when the ring is empty, negative on a corrupt
 * ring header. */
int net_recv(void)
{
    int curr;
    int page;
    int next;
    int status;
    int total;
    int hdr;
    int w;
    //@hw
    outb(CMD_PAGE1, NE_CMD);
    curr = inb(NE_CURR);
    outb(CMD_START, NE_CMD);
    page = inb(NE_BNRY) + 1;
    if (page >= RING_STOP) {
        page = RING_START;
    }
    if (page == curr) {
        return 0;
    }
    outb(0x00, NE_RSAR0);
    outb(page, NE_RSAR1);
    outb(4, NE_RBCR0);
    outb(0, NE_RBCR1);
    outb(CMD_RREAD, NE_CMD);
    hdr = inw(NE_DATAPORT);
    status = hdr & 0xff;
    next = (hdr >> 8) & 0xff;
    total = inw(NE_DATAPORT);
    if ((status & 0x01) == 0 || total < 4) {
        printk("ne2000: bad ring header");
        return -1;
    }
    outb(4, NE_RSAR0);
    outb(page, NE_RSAR1);
    outb((total - 4) & 0xff, NE_RBCR0);
    outb((total - 4) >> 8, NE_RBCR1);
    outb(CMD_RREAD, NE_CMD);
    for (w = 0; w < (total - 4 + 1) / 2; w++) {
        kbuf_write16(w * 2, inw(NE_DATAPORT));
    }
    if (next == RING_START) {
        outb(RING_STOP - 1, NE_BNRY);
    } else {
        outb(next - 1, NE_BNRY);
    }
    outb(ISR_PRX, NE_ISR);
    //@endhw
    return total - 4;
}
