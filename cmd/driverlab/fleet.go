package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/campaign/fleet"
	"repro/internal/drivers"
	"repro/internal/experiment"
	"repro/internal/obs"
)

// runServe starts a fleet coordinator: it loads (or creates) the
// canonical JSONL store, expands the campaign into shard leases, and
// serves them to `driverlab worker` processes until every task is
// recorded. The coordinator boots nothing itself.
func runServe(args []string) error {
	fs := flag.NewFlagSet("driverlab serve", flag.ContinueOnError)
	store := fs.String("store", "", "canonical JSONL result store (required)")
	addr := fs.String("addr", "127.0.0.1:9309", "address to serve the fleet protocol on (use :0 for an ephemeral port)")
	addrFile := fs.String("addr-file", "", "write the bound fleet address to this file (for scripts using -addr :0)")
	leaseTTL := fs.Duration("lease-ttl", fleet.DefaultLeaseTTL,
		"how long a shard lease survives without a worker heartbeat before it is re-leased")
	resume := fs.Bool("resume", false, "take the spec from the store instead of flags (a restarted coordinator)")
	quiet := fs.Bool("quiet", false, "suppress live progress")
	statusAddr := fs.String("status-addr", "",
		"serve /metrics (Prometheus), /status (JSON) and /debug/pprof on this address while the fleet runs (e.g. :9100)")
	name := fs.String("name", "campaign", "campaign name")
	driversFlag := fs.String("drivers", "ide_c,ide_devil",
		"comma-separated driver list ("+strings.Join(drivers.Names(), ", ")+")")
	sample := fs.Int("sample", 25, "percentage of mutants to boot (paper: 25)")
	seed := fs.Uint64("seed", 2001, "sampling seed")
	shards := fs.Int("shards", 8, "lease granularity: shard count the work-list partitions into "+
		"(should comfortably exceed the worker count)")
	stub := fs.String("stub", "", "Devil stub mode: debug (default) or production")
	permissive := fs.Bool("permissive", false, "downgrade CDevil typing to plain C rules")
	backend := fs.String("backend", "", "hwC execution backend: block (default), compiled or interp")
	scenarios := fs.String("scenario", "",
		"comma-separated hardware scenario cells to cross with the driver list (see `driverlab scenarios`)")
	flushEvery := fs.Int("flush-every", 0,
		"store checkpoint interval in records (0: the store default of 64)")
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}
	if *store == "" {
		return fmt.Errorf("serve: -store is required")
	}

	st, err := campaign.OpenFile(*store)
	if err != nil {
		return err
	}
	defer st.Close()

	var spec campaign.Spec
	if *resume {
		prior, ok := storedSpec(st)
		if !ok {
			return fmt.Errorf("serve -resume: %s holds no spec record", *store)
		}
		spec = prior
		if *shards != 8 {
			// The shard count is fingerprint-excluded, so a restarted
			// coordinator may repartition the remaining work.
			spec.Shards = *shards
		}
		fmt.Fprintf(os.Stderr, "serve: resuming %q from %s\n", spec.Name, *store)
	} else {
		var driverList []string
		for _, d := range strings.Split(*driversFlag, ",") {
			if d = strings.TrimSpace(d); d != "" {
				driverList = append(driverList, d)
			}
		}
		if _, err := experiment.ParseBackend(*backend); err != nil {
			return err
		}
		var scenarioList []string
		for _, sc := range strings.Split(*scenarios, ",") {
			if sc = strings.TrimSpace(sc); sc != "" {
				scenarioList = append(scenarioList, sc)
			}
		}
		spec = campaign.Spec{
			Name:       *name,
			Drivers:    driverList,
			SamplePct:  *sample,
			Seed:       *seed,
			Shards:     *shards,
			StubMode:   *stub,
			Permissive: *permissive,
			Backend:    *backend,
			Scenarios:  scenarioList,
			FlushEvery: *flushEvery,
		}
	}
	if spec.FlushEvery > 0 {
		st.SetFlushEvery(spec.FlushEvery)
	}

	// Live status: the tracker always runs (it feeds the progress line);
	// the metric collector and HTTP endpoint only with -status-addr. The
	// snapshot served there carries the coordinator's fleet counters, so
	// `campaign status <addr>` is fleet-aware.
	tracker := campaign.NewStatusTracker()
	var col *obs.Collector
	if *statusAddr != "" {
		col = obs.New()
	}
	co, err := fleet.NewCoordinator(fleet.CoordinatorConfig{
		Spec:      spec,
		Workload:  experiment.NewWorkload(),
		Store:     st,
		LeaseTTL:  *leaseTTL,
		Status:    tracker,
		Collector: col,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		},
	})
	if err != nil {
		return err
	}
	if *statusAddr != "" {
		srv, err := obs.Serve(*statusAddr, col, func() any {
			s := tracker.Snapshot()
			fstat := co.FleetStatus()
			s.Fleet = &fstat
			return s
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "serve: observability endpoint at %s (/metrics, /status, /debug/pprof/)\n", srv.URL)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("serve: listen on %s: %w", *addr, err)
	}
	co.Start(ln)
	defer co.Close()
	fmt.Fprintf(os.Stderr, "serve: coordinating %q on %s (%d shards); join with: driverlab worker -connect %s\n",
		spec.Normalized().Name, co.Addr(), spec.Normalized().Shards, co.Addr())
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(co.Addr()+"\n"), 0o644); err != nil {
			return err
		}
	}

	// The first SIGINT/SIGTERM shuts the fleet down gracefully (the
	// store is flushed and consistent; a restarted coordinator leases
	// only the remaining tasks); a second kills the process.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		<-sigc
		fmt.Fprintf(os.Stderr, "\nserve: interrupted, shutting the fleet down (again to kill)\n")
		go co.Close()
		<-sigc
		os.Exit(130)
	}()

	if !*quiet {
		go func() {
			width := termWidth()
			tick := time.NewTicker(500 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-co.Done():
					return
				case <-tick.C:
					fmt.Fprintf(os.Stderr, "\r%s\x1b[K", progressLine(tracker.Snapshot(), width))
				}
			}
		}()
	}

	err = co.Wait()
	if !*quiet {
		fmt.Fprintln(os.Stderr)
	}
	if errors.Is(err, fleet.ErrClosed) {
		if ferr := st.Flush(); ferr != nil {
			return ferr
		}
		snap := tracker.Snapshot()
		fmt.Fprintf(os.Stderr, "serve: interrupted — %d/%d results stored and flushed\n", snap.Recorded, snap.Total)
		fmt.Fprintf(os.Stderr, "serve: restart with: driverlab serve -store %s -resume\n", *store)
		return nil
	}
	if err != nil {
		return err
	}
	// Give connected workers their drain response before the listener
	// goes away, so they exit cleanly rather than on a torn connection.
	co.DrainWorkers(5 * time.Second)
	snap := tracker.Snapshot()
	fmt.Printf("fleet campaign %q complete: %d results (%d already stored), %d leases across the fleet\n",
		spec.Normalized().Name, snap.Recorded, snap.Skipped, co.FleetStatus().Leases)
	for _, line := range campaign.Completion(st.Records()) {
		fmt.Println("  " + line)
	}
	return nil
}

// runWorker joins a fleet worker to a coordinator: it leases shards,
// boots them on the unmodified campaign engine, and streams the records
// back until the campaign drains.
func runWorker(args []string) error {
	fs := flag.NewFlagSet("driverlab worker", flag.ContinueOnError)
	connect := fs.String("connect", "", "coordinator fleet address to join (required; see `driverlab serve`)")
	name := fs.String("name", "", "worker name in coordinator logs and metrics (default: host:pid)")
	workers := fs.Int("workers", 0, "boot worker count inside this process (default: GOMAXPROCS)")
	frontend := fs.String("frontend", "", "per-mutant front end for this worker: incremental (default) or full")
	fingerprint := fs.String("fingerprint", "",
		"spec fingerprint to insist on; the coordinator rejects the handshake if it serves a different campaign")
	quiet := fs.Bool("quiet", false, "suppress per-lease progress")
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}
	if *connect == "" {
		return fmt.Errorf("worker: -connect is required (the address `driverlab serve` printed)")
	}
	if _, err := experiment.ParseFrontend(*frontend); err != nil {
		return err
	}
	if *name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		*name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}

	// The first SIGINT/SIGTERM drains in-flight boots and leaves the
	// lease to the coordinator's re-lease machinery; a second kills.
	interrupt := make(chan struct{})
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	finished := make(chan struct{})
	defer close(finished)
	go func() {
		select {
		case <-sigc:
		case <-finished:
			return
		}
		fmt.Fprintf(os.Stderr, "\nworker: interrupted, finishing in-flight boots (again to kill)\n")
		close(interrupt)
		select {
		case <-sigc:
			os.Exit(130)
		case <-finished:
		}
	}()

	logf := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", a...)
	}
	if *quiet {
		logf = nil
	}
	sum, err := fleet.RunWorker(*connect, experiment.NewWorkload(), fleet.WorkerOptions{
		Name:        *name,
		Workers:     *workers,
		Frontend:    *frontend,
		Fingerprint: *fingerprint,
		Interrupt:   interrupt,
		Logf:        logf,
	})
	if errors.Is(err, campaign.ErrInterrupted) {
		fmt.Fprintf(os.Stderr, "worker: interrupted; the coordinator re-leases any unfinished shard\n")
		return nil
	}
	if err != nil {
		return err
	}
	fmt.Printf("worker %q: %d shards completed, %d records streamed\n", *name, sum.Shards, sum.Records)
	return nil
}
