package fleet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
)

// DefaultBatchSize is how many result records a worker accumulates
// before streaming a records frame (matching the file store's flush
// cadence).
const DefaultBatchSize = 64

// WorkerOptions tunes one fleet worker.
type WorkerOptions struct {
	// Name identifies the worker in coordinator logs, rejections and
	// per-worker metrics (default: the connection's local address).
	Name string
	// Workers is the engine pool size inside this process (default:
	// GOMAXPROCS, the engine's own default).
	Workers int
	// Frontend overrides the front-end strategy for this worker's boots
	// ("", "incremental" or "full"). Front ends are fingerprint-excluded,
	// so a fleet may deliberately split strategies across workers — the
	// oracle guarantee keeps the tables identical.
	Frontend string
	// Fingerprint, when non-empty, is the spec fingerprint the worker
	// insists on; the coordinator rejects the handshake by name when it
	// serves a different campaign.
	Fingerprint string
	// Interrupt, when non-nil, stops the worker once closed: the engine
	// drains in-flight boots, the connection closes, and RunWorker
	// returns campaign.ErrInterrupted.
	Interrupt <-chan struct{}
	// BatchSize is how many records accumulate before a records frame
	// (default DefaultBatchSize).
	BatchSize int
	// Logf, when non-nil, receives one line per lease.
	Logf func(format string, args ...any)

	// suppressHeartbeats silences the heartbeat loop — a chaos hook for
	// tests that prove the coordinator re-leases a wedged worker's shard.
	suppressHeartbeats bool
}

// WorkerSummary reports what one worker did over its connection.
type WorkerSummary struct {
	// Shards is how many leases the worker completed.
	Shards int
	// Records is how many result records it streamed to the coordinator.
	Records int
}

// RunWorker dials a fleet coordinator and works until the campaign
// drains: handshake, then lease-execute-stream in a loop. Each granted
// shard runs on the unmodified campaign engine against an in-memory
// store seeded with the grant's already-stored records, so only the
// remaining tasks boot; every freshly appended result streams back in
// batches while a background heartbeat keeps the lease alive through
// long boots.
func RunWorker(addr string, wl campaign.Workload, opts WorkerOptions) (*WorkerSummary, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fleet: dial coordinator %s: %w", addr, err)
	}
	defer nc.Close()
	name := opts.Name
	if name == "" {
		name = nc.LocalAddr().String()
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	batchSize := opts.BatchSize
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}

	// All writes to the connection — lease requests, record batches from
	// engine goroutines, heartbeats — go through one mutex. Reads need
	// none: the main loop is the only reader, and the coordinator only
	// sends frames in response to requests.
	var sendMu sync.Mutex
	send := func(m Msg) error {
		sendMu.Lock()
		defer sendMu.Unlock()
		return WriteMsg(nc, m)
	}

	if err := send(Msg{T: MsgHello, Name: name, Proto: Proto, Fingerprint: opts.Fingerprint}); err != nil {
		return nil, err
	}
	welcome, err := ReadMsg(nc)
	if err != nil {
		return nil, fmt.Errorf("fleet: handshake with %s failed: %w", addr, err)
	}
	switch welcome.T {
	case MsgReject:
		return nil, fmt.Errorf("fleet: coordinator %s rejected worker %q: %s", addr, name, welcome.Error)
	case MsgWelcome:
		// fall through
	default:
		return nil, fmt.Errorf("fleet: handshake with %s: got %q frame, want %q", addr, welcome.T, MsgWelcome)
	}
	if welcome.Spec == nil {
		return nil, fmt.Errorf("fleet: coordinator %s sent a welcome without a spec", addr)
	}
	spec := *welcome.Spec
	if opts.Frontend != "" {
		spec.Frontend = opts.Frontend
	}
	spec = spec.Normalized()
	if fp := spec.Fingerprint(); fp != welcome.Fingerprint {
		// Only possible if the worker-side override changed the workload
		// (it must not: front ends are fingerprint-excluded). Refuse to
		// run rather than stream records for a different campaign.
		return nil, fmt.Errorf("fleet: spec from %s fingerprints to %s after local overrides, coordinator claims %s",
			addr, fp, welcome.Fingerprint)
	}

	// The interrupt watcher unblocks the main loop's blocking read by
	// closing the connection; `interrupted` disambiguates that from a
	// genuine network failure.
	var interrupted atomic.Bool
	stop := make(chan struct{})
	defer close(stop)
	if opts.Interrupt != nil {
		go func() {
			select {
			case <-opts.Interrupt:
				interrupted.Store(true)
				nc.Close()
			case <-stop:
			}
		}()
	}

	// Heartbeats keep leases alive while the engine is deep inside a
	// slow boot and no records are flowing.
	if !opts.suppressHeartbeats && welcome.HeartbeatMS > 0 {
		go func() {
			tick := time.NewTicker(time.Duration(welcome.HeartbeatMS) * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					if send(Msg{T: MsgHeartbeat}) != nil {
						return
					}
				}
			}
		}()
	}

	fail := func(err error) (*WorkerSummary, error) {
		if interrupted.Load() {
			return nil, campaign.ErrInterrupted
		}
		return nil, err
	}

	sum := &WorkerSummary{}
	for {
		if opts.Interrupt != nil {
			select {
			case <-opts.Interrupt:
				return nil, campaign.ErrInterrupted
			default:
			}
		}
		if err := send(Msg{T: MsgLease}); err != nil {
			return fail(fmt.Errorf("fleet: request lease: %w", err))
		}
		m, err := ReadMsg(nc)
		if err != nil {
			return fail(fmt.Errorf("fleet: coordinator %s: %w", addr, err))
		}
		switch m.T {
		case MsgDrain:
			logf("fleet: campaign drained; worker %q exiting after %d shards, %d records",
				name, sum.Shards, sum.Records)
			return sum, nil
		case MsgRetry:
			delay := time.Duration(m.DelayMS) * time.Millisecond
			if delay <= 0 {
				delay = DefaultRetryDelay
			}
			select {
			case <-time.After(delay):
			case <-opts.Interrupt:
				return nil, campaign.ErrInterrupted
			}
		case MsgGrant:
			n, err := runLease(spec, wl, m, send, batchSize, opts)
			sum.Records += n
			if err != nil {
				if errors.Is(err, campaign.ErrInterrupted) {
					return nil, campaign.ErrInterrupted
				}
				return fail(fmt.Errorf("fleet: shard %d: %w", m.Shard, err))
			}
			sum.Shards++
			logf("fleet: worker %q finished shard %d (%d records streamed)", name, m.Shard, n)
		case MsgReject:
			return nil, fmt.Errorf("fleet: coordinator %s dropped worker %q: %s", addr, name, m.Error)
		default:
			return nil, fmt.Errorf("fleet: coordinator %s sent unexpected %q frame to a worker", addr, m.T)
		}
	}
}

// runLease executes one granted shard: seed an in-memory store with the
// spec record plus everything the coordinator already holds for the
// shard, run the unmodified engine on just that shard, and stream every
// new result record back in batches.
func runLease(spec campaign.Spec, wl campaign.Workload, grant Msg,
	send func(Msg) error, batchSize int, opts WorkerOptions) (int, error) {
	mem := campaign.NewMemStore()
	if err := mem.Append(campaign.SpecRecord(spec)); err != nil {
		return 0, err
	}
	for _, r := range grant.Done {
		if err := mem.Append(r); err != nil {
			return 0, err
		}
	}
	tap := &tapStore{base: mem, shard: grant.Shard, send: send, batchSize: batchSize}
	_, err := campaign.Run(spec, wl, tap, campaign.Options{
		Workers:   opts.Workers,
		Shards:    []int{grant.Shard},
		Interrupt: opts.Interrupt,
	})
	if err != nil {
		tap.flush() // best effort: completed boots still reach the store
		return tap.sent, err
	}
	if err := tap.flush(); err != nil {
		return tap.sent, err
	}
	return tap.sent, send(Msg{T: MsgDone, Shard: grant.Shard})
}

// tapStore wraps the worker's in-memory store and streams every freshly
// appended result record to the coordinator in batches. The engine's
// worker goroutines call Append concurrently; the batch has its own
// lock, and frames go out under the shared connection send mutex.
type tapStore struct {
	base      *campaign.MemStore
	shard     int
	send      func(Msg) error
	batchSize int

	mu    sync.Mutex
	batch []campaign.Record
	sent  int
}

func (t *tapStore) Records() []campaign.Record { return t.base.Records() }
func (t *tapStore) Close() error               { return t.base.Close() }

func (t *tapStore) Append(r campaign.Record) error {
	if err := t.base.Append(r); err != nil {
		return err
	}
	if r.Kind != campaign.KindResult {
		return nil // spec/meta records are the coordinator's to write
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.batch = append(t.batch, r)
	if len(t.batch) >= t.batchSize {
		return t.flushLocked()
	}
	return nil
}

// flush streams any remaining batched records.
func (t *tapStore) flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.flushLocked()
}

func (t *tapStore) flushLocked() error {
	if len(t.batch) == 0 {
		return nil
	}
	batch := t.batch
	t.batch = nil
	if err := t.send(Msg{T: MsgRecords, Shard: t.shard, Records: batch}); err != nil {
		return err
	}
	t.sent += len(batch)
	return nil
}
