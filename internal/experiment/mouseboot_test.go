package experiment

import (
	"testing"

	"repro/internal/drivers"
	"repro/internal/kernel"
)

// TestCleanMouseBoot: both busmouse drivers must compile and deliver the
// motion script verbatim.
func TestCleanMouseBoot(t *testing.T) {
	for _, name := range []string{"busmouse_c", "busmouse_devil"} {
		t.Run(name, func(t *testing.T) {
			src, err := drivers.Load(name)
			if err != nil {
				t.Fatal(err)
			}
			toks, err := ParseDriver(src.Text)
			if err != nil {
				t.Fatal(err)
			}
			res, err := BootMouse(BootInput{Tokens: toks, Devil: src.Devil})
			if err != nil {
				t.Fatal(err)
			}
			if res.CompileDetected() {
				for _, e := range res.CompileErrors {
					t.Errorf("  compile: %v", e)
				}
				t.Fatal("clean driver failed to compile")
			}
			if res.Outcome != kernel.OutcomeBoot {
				t.Errorf("outcome = %v (%v)", res.Outcome, res.RunErr)
				for _, line := range res.Console {
					t.Logf("console: %s", line)
				}
			}
			t.Logf("%s: %d steps", name, res.Steps)
		})
	}
}

// TestMouseMutationSmoke runs a small sample of the extension experiment
// and checks the Devil-vs-C shape carries over to the second driver pair.
func TestMouseMutationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("mutation smoke test is not short")
	}
	opts := MutationOptions{SamplePct: 20, Seed: 7}
	c, err := MouseMutation("busmouse_c", opts)
	if err != nil {
		t.Fatal(err)
	}
	d, err := MouseMutation("busmouse_devil", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s\n%s",
		FormatDriverTable(c, "Extension: mutations on the C busmouse driver"),
		FormatDriverTable(d, "Extension: mutations on the CDevil busmouse driver"))
	if d.DetectedPct() <= c.DetectedPct() {
		t.Errorf("Devil detection (%.1f%%) should exceed C (%.1f%%)",
			d.DetectedPct(), c.DetectedPct())
	}
}
