// Package clexer tokenises hwC driver source.
//
// Two pieces of driver-evaluation plumbing live here rather than in a
// general-purpose C lexer:
//
//   - //@hw and //@endhw comment pragmas delimit the hardware operating
//     code regions that the paper's methodology mutates ("we manually
//     insert tags to mark the corresponding regions", §3.3); tokens inside
//     carry Tagged = true;
//   - #define directives are kept in the token stream (HashDefine ...
//     EndDefine) so that mutation of macro bodies and of macro references
//     works on the same representation.
package clexer

import (
	"fmt"
	"strings"

	"repro/internal/cdriver/ctoken"
)

// Error is a lexical diagnostic.
type Error struct {
	Pos ctoken.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

type lexer struct {
	src      string
	off      int
	line     int
	col      int
	tagged   bool
	inDefine bool
	errors   []*Error
}

// Lex tokenises the whole buffer.
func Lex(src string) ([]ctoken.Token, []*Error) {
	l := &lexer{src: src, line: 1, col: 1}
	var toks []ctoken.Token
	for {
		t := l.next()
		if t.Kind == ctoken.EOF {
			if l.inDefine {
				toks = append(toks, ctoken.Token{Kind: ctoken.EndDefine, Pos: t.Pos, Tagged: l.tagged})
			}
			break
		}
		toks = append(toks, t)
	}
	return toks, l.errors
}

func (l *lexer) errorf(pos ctoken.Pos, format string, args ...interface{}) {
	l.errors = append(l.errors, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (l *lexer) pos() ctoken.Pos { return ctoken.Pos{Offset: l.off, Line: l.line, Col: l.col} }

func (l *lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) peekAt(n int) byte {
	if l.off+n >= len(l.src) {
		return 0
	}
	return l.src[l.off+n]
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isLetter(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

// endDefineIfNeeded synthesises the EndDefine token when a newline closes a
// #define directive.
func (l *lexer) skipSpace() (ended bool, endPos ctoken.Pos) {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == '\n':
			if l.inDefine {
				pos := l.pos()
				l.advance()
				l.inDefine = false
				return true, pos
			}
			l.advance()
		case c == ' ' || c == '\t' || c == '\r':
			l.advance()
		case c == '\\' && l.peekAt(1) == '\n':
			// Line continuation inside a directive.
			l.advance()
			l.advance()
		case c == '/' && l.peekAt(1) == '/':
			start := l.off
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
			comment := l.src[start:l.off]
			switch strings.TrimSpace(strings.TrimPrefix(comment, "//")) {
			case "@hw":
				l.tagged = true
			case "@endhw":
				l.tagged = false
			}
		case c == '/' && l.peekAt(1) == '*':
			pos := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peekAt(1) == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(pos, "unterminated block comment")
			}
		default:
			return false, ctoken.Pos{}
		}
	}
	return false, ctoken.Pos{}
}

func (l *lexer) tok(kind ctoken.Kind, lit string, pos ctoken.Pos) ctoken.Token {
	return ctoken.Token{Kind: kind, Lit: lit, Pos: pos, Tagged: l.tagged}
}

func (l *lexer) next() ctoken.Token {
	if ended, pos := l.skipSpace(); ended {
		return l.tok(ctoken.EndDefine, "", pos)
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return l.tok(ctoken.EOF, "", pos)
	}
	c := l.peek()
	switch {
	case c == '#':
		start := l.off
		l.advance()
		for l.off < len(l.src) && isLetter(l.peek()) {
			l.advance()
		}
		word := l.src[start:l.off]
		if word == "#define" {
			l.inDefine = true
			return l.tok(ctoken.HashDefine, word, pos)
		}
		l.errorf(pos, "unsupported directive %q", word)
		return l.tok(ctoken.Illegal, word, pos)
	case isLetter(c):
		start := l.off
		for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		lit := l.src[start:l.off]
		return l.tok(ctoken.Lookup(lit), lit, pos)
	case isDigit(c):
		return l.scanNumber(pos)
	case c == '"':
		return l.scanString(pos)
	case c == '\'':
		return l.scanChar(pos)
	}
	l.advance()
	two := string(c) + string(l.peek())
	three := two
	if l.off+1 < len(l.src) {
		three = two + string(l.peekAt(1))
	}
	// Three-character operators.
	switch three {
	case "<<=", ">>=":
		l.advance()
		l.advance()
		if three == "<<=" {
			return l.tok(ctoken.ShlAssign, three, pos)
		}
		return l.tok(ctoken.ShrAssign, three, pos)
	}
	// Two-character operators.
	switch two {
	case "|=":
		l.advance()
		return l.tok(ctoken.OrAssign, two, pos)
	case "&=":
		l.advance()
		return l.tok(ctoken.AndAssign, two, pos)
	case "^=":
		l.advance()
		return l.tok(ctoken.XorAssign, two, pos)
	case "+=":
		l.advance()
		return l.tok(ctoken.AddAssign, two, pos)
	case "-=":
		l.advance()
		return l.tok(ctoken.SubAssign, two, pos)
	case "++":
		l.advance()
		return l.tok(ctoken.PlusPlus, two, pos)
	case "--":
		l.advance()
		return l.tok(ctoken.MinusMinus, two, pos)
	case "||":
		l.advance()
		return l.tok(ctoken.LOr, two, pos)
	case "&&":
		l.advance()
		return l.tok(ctoken.LAnd, two, pos)
	case "==":
		l.advance()
		return l.tok(ctoken.Eq, two, pos)
	case "!=":
		l.advance()
		return l.tok(ctoken.Ne, two, pos)
	case "<=":
		l.advance()
		return l.tok(ctoken.Le, two, pos)
	case ">=":
		l.advance()
		return l.tok(ctoken.Ge, two, pos)
	case "<<":
		l.advance()
		return l.tok(ctoken.Shl, two, pos)
	case ">>":
		l.advance()
		return l.tok(ctoken.Shr, two, pos)
	}
	// Single-character tokens.
	switch c {
	case '(':
		return l.tok(ctoken.LParen, "(", pos)
	case ')':
		return l.tok(ctoken.RParen, ")", pos)
	case '{':
		return l.tok(ctoken.LBrace, "{", pos)
	case '}':
		return l.tok(ctoken.RBrace, "}", pos)
	case ',':
		return l.tok(ctoken.Comma, ",", pos)
	case ';':
		return l.tok(ctoken.Semi, ";", pos)
	case ':':
		return l.tok(ctoken.Colon, ":", pos)
	case '?':
		return l.tok(ctoken.Question, "?", pos)
	case '=':
		return l.tok(ctoken.Assign, "=", pos)
	case '|':
		return l.tok(ctoken.Or, "|", pos)
	case '&':
		return l.tok(ctoken.And, "&", pos)
	case '^':
		return l.tok(ctoken.Xor, "^", pos)
	case '+':
		return l.tok(ctoken.Add, "+", pos)
	case '-':
		return l.tok(ctoken.Sub, "-", pos)
	case '*':
		return l.tok(ctoken.Mul, "*", pos)
	case '/':
		return l.tok(ctoken.Div, "/", pos)
	case '%':
		return l.tok(ctoken.Mod, "%", pos)
	case '!':
		return l.tok(ctoken.Not, "!", pos)
	case '~':
		return l.tok(ctoken.BitNot, "~", pos)
	case '<':
		return l.tok(ctoken.Lt, "<", pos)
	case '>':
		return l.tok(ctoken.Gt, ">", pos)
	}
	l.errorf(pos, "unexpected character %q", string(c))
	return l.tok(ctoken.Illegal, string(c), pos)
}

func (l *lexer) scanNumber(pos ctoken.Pos) ctoken.Token {
	start := l.off
	if l.peek() == '0' && (l.peekAt(1) == 'x' || l.peekAt(1) == 'X') {
		l.advance()
		l.advance()
		digits := l.off
		for l.off < len(l.src) && isHexDigit(l.peek()) {
			l.advance()
		}
		if l.off == digits {
			l.errorf(pos, "hexadecimal literal has no digits")
			return l.tok(ctoken.Illegal, l.src[start:l.off], pos)
		}
		l.skipIntSuffix()
		return l.tok(ctoken.HexInt, l.src[start:l.off], pos)
	}
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	lit := l.src[start:l.off]
	l.skipIntSuffix()
	if len(lit) > 1 && lit[0] == '0' {
		for i := 1; i < len(lit); i++ {
			if lit[i] > '7' {
				l.errorf(pos, "invalid octal literal %q", lit)
				return l.tok(ctoken.Illegal, lit, pos)
			}
		}
		return l.tok(ctoken.OctInt, lit, pos)
	}
	return l.tok(ctoken.DecInt, lit, pos)
}

// skipIntSuffix consumes C integer suffixes (u, l, ul, ...), which the
// subset accepts and ignores.
func (l *lexer) skipIntSuffix() {
	for l.off < len(l.src) {
		switch l.peek() {
		case 'u', 'U', 'l', 'L':
			l.advance()
		default:
			return
		}
	}
}

func (l *lexer) scanString(pos ctoken.Pos) ctoken.Token {
	l.advance() // opening quote
	var b strings.Builder
	for l.off < len(l.src) {
		c := l.peek()
		if c == '"' {
			l.advance()
			return l.tok(ctoken.String, b.String(), pos)
		}
		if c == '\n' {
			break
		}
		if c == '\\' && l.off+1 < len(l.src) {
			l.advance()
			esc := l.advance()
			switch esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\\', '"':
				b.WriteByte(esc)
			default:
				b.WriteByte(esc)
			}
			continue
		}
		b.WriteByte(l.advance())
	}
	l.errorf(pos, "unterminated string literal")
	return l.tok(ctoken.Illegal, b.String(), pos)
}

func (l *lexer) scanChar(pos ctoken.Pos) ctoken.Token {
	l.advance() // opening quote
	if l.off >= len(l.src) {
		l.errorf(pos, "unterminated character literal")
		return l.tok(ctoken.Illegal, "", pos)
	}
	c := l.advance()
	if c == '\\' && l.off < len(l.src) {
		esc := l.advance()
		switch esc {
		case 'n':
			c = '\n'
		case 't':
			c = '\t'
		case '0':
			c = 0
		default:
			c = esc
		}
	}
	if l.off >= len(l.src) || l.peek() != '\'' {
		l.errorf(pos, "unterminated character literal")
		return l.tok(ctoken.Illegal, string(c), pos)
	}
	l.advance()
	return l.tok(ctoken.CharLit, string(c), pos)
}

// Render reassembles source text from a token stream, preserving the
// original line structure so that positions in diagnostics and coverage
// remain meaningful for mutated sources.
func Render(toks []ctoken.Token) string {
	var b strings.Builder
	line := 1
	for i, t := range toks {
		if t.Kind == ctoken.EndDefine {
			continue // rendered as the newline itself
		}
		for line < t.Pos.Line {
			b.WriteByte('\n')
			line++
		}
		if i > 0 && toks[i-1].Pos.Line == t.Pos.Line && toks[i-1].Kind != ctoken.EndDefine {
			b.WriteByte(' ')
		}
		switch t.Kind {
		case ctoken.String:
			b.WriteByte('"')
			b.WriteString(escapeString(t.Lit))
			b.WriteByte('"')
		case ctoken.CharLit:
			b.WriteByte('\'')
			b.WriteString(escapeString(t.Lit))
			b.WriteByte('\'')
		default:
			b.WriteString(t.Lit)
		}
	}
	b.WriteByte('\n')
	return b.String()
}

func escapeString(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}
