/*
 * busmouse_devil.c — the busmouse driver re-engineered over Devil stubs.
 *
 * The Figure 1 contrast: buttons = get_buttons(); dy = get_dy(); — the
 * index pre-actions, masks and shifts all live in the specification.
 */

#define MOUSE_SIG_BYTE 165

int mouse_init(void)
{
    //@hw
    set_signature(MOUSE_SIG_BYTE);
    if (get_signature() != MOUSE_SIG_BYTE) {
        printk("busmouse: no adapter found");
        return 1;
    }
    set_config(CONFIGURATION);
    set_interrupt(ENABLE);
    //@endhw
    printk("busmouse: adapter configured");
    return 0;
}

/* Poll the counters: dx in the low byte, dy in the second byte, buttons
 * in the third. */
int mouse_poll(void)
{
    int dx;
    int dy;
    int b;
    //@hw
    dx = get_dx();
    dy = get_dy();
    b = get_buttons();
    //@endhw
    return (dx & 0xff) | ((dy & 0xff) << 8) | (b << 16);
}
