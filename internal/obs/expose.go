package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Sample is one gathered series: the family identity plus a point-in-
// time copy of its value. Counters and gauges fill Value; histograms
// fill Count, Sum, Bounds and Buckets (non-cumulative, +Inf last).
type Sample struct {
	Name   string
	Labels []string // ordered k,v pairs
	Kind   Kind

	Value float64 // counters and gauges

	Count   uint64 // histograms
	Sum     float64
	Bounds  []float64
	Buckets []uint64
}

// Label returns the value of the named label, or "" if absent.
func (s Sample) Label(key string) string {
	for i := 0; i+1 < len(s.Labels); i += 2 {
		if s.Labels[i] == key {
			return s.Labels[i+1]
		}
	}
	return ""
}

// Gather snapshots every registered series, families in registration
// order and series in creation order.
func (c *Collector) Gather() []Sample {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	fams := append([]*family(nil), c.order...)
	c.mu.Unlock()

	var out []Sample
	for _, f := range fams {
		f.mu.Lock()
		ser := append([]*series(nil), f.order...)
		f.mu.Unlock()
		for _, s := range ser {
			smp := Sample{Name: f.name, Labels: s.labels, Kind: f.kind}
			switch f.kind {
			case KindCounter:
				smp.Value = float64(s.c.Value())
			case KindGauge:
				smp.Value = float64(s.g.Value())
			case KindHistogram:
				smp.Count, smp.Sum, smp.Buckets = s.h.Snapshot()
				smp.Bounds = s.h.Bounds()
			}
			out = append(out, smp)
		}
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): # HELP and # TYPE headers per
// family, cumulative le-labelled buckets plus _sum and _count for
// histograms.
func (c *Collector) WritePrometheus(w io.Writer) error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	fams := append([]*family(nil), c.order...)
	c.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		f.mu.Lock()
		ser := append([]*series(nil), f.order...)
		f.mu.Unlock()
		for _, s := range ser {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch f.kind {
	case KindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelSet(s.labels, "", 0), s.c.Value())
		return err
	case KindGauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelSet(s.labels, "", 0), s.g.Value())
		return err
	case KindHistogram:
		count, sum, buckets := s.h.Snapshot()
		bounds := s.h.Bounds()
		var cum uint64
		for i, b := range bounds {
			cum += buckets[i]
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				f.name, labelSet(s.labels, "le", b), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.name, labelSetInf(s.labels), count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
			f.name, labelSet(s.labels, "", 0), formatFloat(sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelSet(s.labels, "", 0), count)
		return err
	}
	return nil
}

// labelSet renders {k="v",...}; with a non-empty le key the bound is
// appended as the final label. Empty set renders as nothing.
func labelSet(labels []string, leKey string, le float64) string {
	if len(labels) == 0 && leKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	if leKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(leKey)
		b.WriteString(`="`)
		b.WriteString(formatFloat(le))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func labelSetInf(labels []string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	if len(labels) > 0 {
		b.WriteByte(',')
	}
	b.WriteString(`le="+Inf"}`)
	return b.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}
