package hw

// Clock is the virtual time source shared by device models and the kernel
// simulator. Device state machines that take "time" on real hardware (an IDE
// command completing, a FIFO draining) advance when the clock ticks, so a
// driver busy-wait loop makes forward progress deterministically: each
// interpreter step ticks the clock once.
//
// The zero value is a clock at time zero, ready to use.
type Clock struct {
	now       uint64
	listeners []func(now uint64)
}

// Now returns the current virtual time in ticks.
func (c *Clock) Now() uint64 { return c.now }

// Tick advances virtual time by n ticks, notifying listeners once per tick
// batch (listeners receive the new time).
func (c *Clock) Tick(n uint64) {
	if n == 0 {
		return
	}
	c.now += n
	for _, f := range c.listeners {
		f(c.now)
	}
}

// OnTick registers a listener invoked after every Tick. Device models use
// this to advance internal state machines.
func (c *Clock) OnTick(f func(now uint64)) {
	c.listeners = append(c.listeners, f)
}

// Snapshot returns the current virtual time, for the pristine-prefix
// snapshot a campaign rig captures at driver entry.
func (c *Clock) Snapshot() uint64 { return c.now }

// Restore rewinds virtual time to a captured instant without notifying
// listeners: it is a machine-restore operation, not a time advance, and
// the caller restores every attached device model to state consistent
// with the same instant. Device behaviour is a function of relative time
// only (see Kernel.Reset), so rewinding the shared clock between boots
// is as unobservable as letting it run monotonically.
func (c *Clock) Restore(now uint64) { c.now = now }
