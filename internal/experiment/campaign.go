package experiment

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/cdriver/cincr"
	"repro/internal/devil/codegen"
	"repro/internal/drivers"
	"repro/internal/mutation/cmut"
	"repro/internal/obs"
)

// This file binds the generic campaign engine (internal/campaign) to the
// repository's drivers: how a spec expands into an enumerated, sampled
// work-list, and how one task boots. The in-memory table entry points
// (Table3/Table4/MouseMutation) are thin wrappers that run a one-driver
// campaign against an in-memory store, so the serial paths and the
// sharded, persisted `driverlab campaign` paths share every line of
// execution logic and aggregate to identical tables.

// CampaignSpec translates the historical MutationOptions form into a
// one-driver campaign spec.
func CampaignSpec(driver string, opts MutationOptions) campaign.Spec {
	return campaign.Spec{
		Name:       "inline",
		Drivers:    []string{driver},
		SamplePct:  opts.SamplePct,
		Seed:       opts.Seed,
		StubMode:   stubModeName(opts.StubMode),
		Permissive: opts.ForcePermissive,
		Budget:     ExperimentBudget,
		Backend:    string(opts.Backend),
	}
}

func stubModeName(m codegen.Mode) string {
	switch m {
	case codegen.Production:
		return "production"
	case codegen.Debug:
		return "debug"
	default:
		return ""
	}
}

func stubModeFromName(name string) (codegen.Mode, error) {
	switch name {
	case "", "debug":
		return codegen.Debug, nil
	case "production":
		return codegen.Production, nil
	default:
		return 0, fmt.Errorf("unknown stub mode %q", name)
	}
}

// TableFromCampaign renders aggregated campaign data as the DriverTable
// the paper's formatting works on. TotalMutants is the selected
// population of the spec, so a partial store renders with its gaps
// visible rather than silently rescaled.
func TableFromCampaign(d *campaign.TableData) *DriverTable {
	return &DriverTable{
		Driver:               d.Driver,
		Counts:               d.Counts,
		SiteSets:             d.SiteSets,
		TotalSites:           d.TotalSites,
		TotalMutants:         d.Selected,
		Enumerated:           d.Enumerated,
		PartitionTableLosses: d.Losses,
	}
}

// driverPlan is the cached enumeration of one driver: computed once per
// workload and shared (read-only) by Expand and every worker.
type driverPlan struct {
	src drivers.Source
	res *cmut.Result
	// incr is the span analysis of the pristine stream — the shared half
	// of the incremental front end (nil when the source is outside the
	// splitter's shape; workers then use the full pipeline).
	incr *cincr.Source
	// dedup holds, per mutant ID, the stream hash shared with at least
	// one other mutant ("" for unique streams).
	dedup []string
}

// workload implements campaign.Workload over the embedded driver corpus.
type workload struct {
	mu    sync.Mutex
	plans map[string]*driverPlan
	// col, when non-nil, makes every worker record boot-pipeline phase
	// spans and fallback counters into it.
	col *obs.Collector
}

// NewWorkload returns the campaign workload that enumerates and boots
// this repository's embedded drivers, routing every driver to its
// registered boot rig (with per-worker rig reuse) through the workload
// registry.
func NewWorkload() campaign.Workload {
	return &workload{plans: make(map[string]*driverPlan)}
}

// NewObservedWorkload is NewWorkload with boot-pipeline instrumentation:
// every worker's rigs record per-phase spans (respan, check, compile,
// execute, classify) and fallback counters into col. A nil collector
// yields the uninstrumented workload.
func NewObservedWorkload(col *obs.Collector) campaign.Workload {
	return &workload{plans: make(map[string]*driverPlan), col: col}
}

// plan returns (building on first use) the enumeration of one driver.
func (w *workload) plan(driver string) (*driverPlan, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if p, ok := w.plans[driver]; ok {
		return p, nil
	}
	src, err := drivers.Load(driver)
	if err != nil {
		return nil, err
	}
	desc, err := WorkloadFor(driver)
	if err != nil {
		return nil, err
	}
	toks, err := ParseDriver(src.Text)
	if err != nil {
		return nil, err
	}
	var iface *codegen.Interface
	if src.Devil {
		// The stub interface feeds the identifier-mutation pools.
		iface, err = desc.Interface()
		if err != nil {
			return nil, err
		}
	}
	res, err := cmut.Enumerate(toks, cmut.Options{Interface: iface})
	if err != nil {
		return nil, fmt.Errorf("driver %s: %w", driver, err)
	}
	p := &driverPlan{src: src, res: res, dedup: res.DedupKeys()}
	if incr, err := cincr.Analyze(res.Tokens); err == nil {
		p.incr = incr
	}
	w.plans[driver] = p
	return p, nil
}

// Expand implements campaign.Workload.
func (w *workload) Expand(spec campaign.Spec) ([]campaign.Meta, []campaign.Task, error) {
	if _, err := stubModeFromName(spec.StubMode); err != nil {
		return nil, nil, err
	}
	if _, err := ParseBackend(spec.Backend); err != nil {
		return nil, nil, err
	}
	if _, err := ParseFrontend(spec.Frontend); err != nil {
		return nil, nil, err
	}
	if _, err := parseSnapshotKnob(spec.Snapshot); err != nil {
		return nil, nil, err
	}
	// Validate every scenario cell up front (the engine crosses the
	// work-list with them after Expand): a misspelled scenario fails the
	// campaign before any rig is assembled.
	for _, sc := range spec.Normalized().Scenarios {
		if sc == "" {
			continue
		}
		if err := CheckScenario(sc); err != nil {
			return nil, nil, err
		}
	}
	var metas []campaign.Meta
	var tasks []campaign.Task
	for _, driver := range spec.Drivers {
		p, err := w.plan(driver)
		if err != nil {
			return nil, nil, err
		}
		selected := selectMutants(len(p.res.Mutants), MutationOptions{
			SamplePct: spec.SamplePct, Seed: spec.Seed,
		})
		metas = append(metas, campaign.Meta{
			Driver:     driver,
			Sites:      len(p.res.Sites),
			Enumerated: len(p.res.Mutants),
			Selected:   len(selected),
		})
		for _, id := range selected {
			tasks = append(tasks, campaign.Task{Driver: driver, Mutant: id, Dedup: p.dedup[id]})
		}
	}
	return metas, tasks, nil
}

// NewWorker implements campaign.Workload.
func (w *workload) NewWorker(spec campaign.Spec) (campaign.Worker, error) {
	mode, err := stubModeFromName(spec.StubMode)
	if err != nil {
		return nil, err
	}
	backend, err := ParseBackend(spec.Backend)
	if err != nil {
		return nil, err
	}
	frontend, err := ParseFrontend(spec.Frontend)
	if err != nil {
		return nil, err
	}
	noSnap, err := parseSnapshotKnob(spec.Snapshot)
	if err != nil {
		return nil, err
	}
	return &worker{w: w, spec: spec, mode: mode, backend: backend,
		frontend: frontend, noSnap: noSnap,
		rigs: make(rigSet), obs: make(map[string]*bootObs)}, nil
}

// parseSnapshotKnob maps the spec's snapshot knob to the rig's
// DisableSnapshot flag: "" and "on" enable snapshotting (the default),
// "off" disables it.
func parseSnapshotKnob(s string) (disable bool, err error) {
	switch s {
	case "", "on":
		return false, nil
	case "off":
		return true, nil
	}
	return false, fmt.Errorf("unknown snapshot setting %q (want on or off)", s)
}

// worker boots tasks on a single goroutine, reusing one rig per
// workload — looked up through the registry, Reset instead of rebuilt
// between boots. With the incremental front end (the default)
// per-mutant work shrinks further: the mutated token stream is never
// materialised — the boot input is the shared pristine span analysis
// plus one replacement token, and only the declaration containing it
// re-runs the parse-check-compile chain.
type worker struct {
	w        *workload
	spec     campaign.Spec
	mode     codegen.Mode
	backend  Backend
	frontend Frontend
	// noSnap mirrors the spec's snapshot=off knob onto every rig.
	noSnap bool
	rigs   rigSet
	// obs caches the per-workload instrumentation bundles bound to the
	// workload's collector (unused when the workload is unobserved).
	obs map[string]*bootObs
	// mut is the reused Mutation cell of the incremental boot input.
	mut cincr.Mutation
}

// Boot implements campaign.Worker.
func (wk *worker) Boot(t campaign.Task) (campaign.Outcome, error) {
	p, err := wk.w.plan(t.Driver)
	if err != nil {
		return campaign.Outcome{}, err
	}
	if t.Mutant < 0 || t.Mutant >= len(p.res.Mutants) {
		return campaign.Outcome{}, fmt.Errorf("driver %s: mutant %d outside enumeration (%d mutants)",
			t.Driver, t.Mutant, len(p.res.Mutants))
	}
	m := p.res.Mutants[t.Mutant]
	site := p.res.Sites[m.SiteIndex]
	input := BootInput{
		Devil:      p.src.Devil,
		StubMode:   wk.mode,
		Permissive: wk.spec.Permissive,
		Budget:     wk.spec.Budget,
		Backend:    wk.backend,
		FaultSeed:  t.FaultSeed(),
		WallBudget: DefaultBootWallBudget,
	}
	if wk.spec.BootTimeoutMS > 0 {
		input.WallBudget = time.Duration(wk.spec.BootTimeoutMS) * time.Millisecond
	}
	if wk.frontend == FrontendIncremental && p.incr != nil {
		wk.mut = cincr.Mutation{Src: p.incr, Index: m.TokenIndex, Replacement: m.Replacement}
		input.Mutation = &wk.mut
	} else {
		input.Tokens = p.res.Apply(m)
	}
	if input.Budget == 0 {
		input.Budget = ExperimentBudget
	}

	rig, err := wk.rigs.rigFor(t.Driver, t.Scenario)
	if err != nil {
		return campaign.Outcome{}, err
	}
	rig.DisableSnapshot = wk.noSnap
	if wk.w.col != nil {
		o, ok := wk.obs[rig.Desc.Name]
		if !ok {
			o = newBootObs(wk.w.col, rig.Desc.Name)
			wk.obs[rig.Desc.Name] = o
		}
		rig.caches.obs = o
	}
	br, err := rig.Boot(input)
	if err != nil {
		// Harness-level failure: classified as a crash, like the in-memory
		// path always has.
		return campaign.Outcome{Row: RowCrash, Site: m.SiteIndex}, nil
	}
	return campaign.Outcome{
		Row:   classifyRow(br, site),
		Site:  m.SiteIndex,
		Lost:  br.PartitionTableLost,
		Steps: br.Steps,
	}, nil
}

// Close implements campaign.Worker: the heavyweight rigs are released,
// but the pool stays usable — a Boot after Close rebuilds its rig, as
// the pre-registry workers did.
func (wk *worker) Close() { wk.rigs = make(rigSet) }

// RunCampaignTable runs a one-driver campaign against an in-memory store
// and renders the aggregate — the execution core of every Table 3/4
// style entry point.
func RunCampaignTable(driver string, opts MutationOptions) (*DriverTable, error) {
	spec := CampaignSpec(driver, opts)
	store := campaign.NewMemStore()
	if _, err := campaign.Run(spec, NewWorkload(), store, campaign.Options{
		Workers: opts.Workers,
	}); err != nil {
		return nil, err
	}
	tables, _, err := campaign.Aggregate(store.Records())
	if err != nil {
		return nil, err
	}
	t, ok := tables[driver]
	if !ok {
		return nil, fmt.Errorf("campaign produced no data for driver %s", driver)
	}
	return TableFromCampaign(t), nil
}
