package experiment

import (
	"fmt"

	"repro/internal/cdriver/ccheck"
	"repro/internal/cdriver/cinterp"
	"repro/internal/cdriver/cparser"
	"repro/internal/cdriver/ctypes"
	"repro/internal/devil"
	"repro/internal/devil/codegen"
	"repro/internal/hw"
	"repro/internal/hw/busmouse"
	"repro/internal/hw/sysboard"
	"repro/internal/kernel"
	"repro/internal/specs"
)

// The busmouse experiment extends the paper's evaluation to a second
// driver pair — §4.2 notes the authors were "currently evaluating the
// robustness of Devil over several other Linux drivers". The boot here is
// the mouse's: probe via the signature register, configure, then sample a
// fixed motion script; an event stream that differs from the script is
// visible damage (a wild cursor).

const mouseBase hw.Port = 0x23c

// mouseSpec caches the compiled busmouse specification.
var mouseSpec = mustCompileSpec("busmouse")

func mustCompileSpec(name string) *devil.Spec {
	s, err := specs.Load(name)
	if err != nil {
		panic(err)
	}
	spec, err := devil.Compile(s.Filename, s.Source)
	if err != nil {
		panic(err)
	}
	return spec
}

// motionScript is the deterministic input the simulated user provides.
var motionScript = []struct {
	dx, dy  int
	buttons uint8
}{
	{1, 0, 0}, {3, -2, 0}, {-4, 5, 1}, {0, 0, 5},
	{2, 2, 4}, {-1, -3, 0}, {5, 1, 2}, {-2, 4, 0},
}

// BootMouse compiles and boots one busmouse driver build.
func BootMouse(input BootInput) (*BootResult, error) {
	res := &BootResult{}
	prog, perrs := cparser.ParseTokens(input.Tokens)
	if len(perrs) > 0 {
		for _, e := range perrs {
			res.CompileErrors = append(res.CompileErrors, e)
		}
		return res, nil
	}

	clock := &hw.Clock{}
	bus := hw.NewBus()
	bus.SetFloating(true)
	if err := sysboard.MapAll(bus); err != nil {
		return nil, err
	}
	mouse := busmouse.New()
	if err := bus.Map(mouseBase, 4, mouse); err != nil {
		return nil, err
	}
	kern := kernel.New(clock)
	if input.Budget > 0 {
		kern.SetBudget(input.Budget)
	}

	env := ctypes.NewEnv(input.Devil && !input.Permissive)
	var stubs *codegen.Stubs
	if input.Devil {
		mode := input.StubMode
		if mode == 0 {
			mode = codegen.Debug
		}
		var err error
		stubs, err = mouseSpec.Generate(devil.Config{
			Bus:   bus,
			Bases: map[string]hw.Port{"base": mouseBase},
			Mode:  mode,
		})
		if err != nil {
			return nil, err
		}
		if err := env.AddStubs(stubs.Interface()); err != nil {
			return nil, err
		}
	}
	if cerrs := ccheck.Check(prog, env); len(cerrs) > 0 {
		for _, e := range cerrs {
			res.CompileErrors = append(res.CompileErrors, e)
		}
		return res, nil
	}

	in, err := cinterp.New(prog, env, kern, bus, stubs)
	if err != nil {
		res.Outcome = kernel.Classify(err)
		res.RunErr = err
		return res, nil
	}
	runErr, damaged := runMouseBoot(kern, mouse, in)
	res.Console = kern.Console()
	res.Coverage = in.Coverage()
	res.Steps = kern.Steps()
	res.RunErr = runErr
	res.Outcome = kernel.Classify(runErr)
	if runErr == nil && damaged {
		res.Outcome = kernel.OutcomeDamagedBoot
	}
	return res, nil
}

// runMouseBoot initialises the driver, feeds the motion script and checks
// the event stream. The mouse counters accumulate, so the harness compares
// cumulative positions.
func runMouseBoot(kern *kernel.Kernel, mouse *busmouse.Mouse, in *cinterp.Interp) (error, bool) {
	ret, err := in.Call("mouse_init")
	if err != nil {
		return err, false
	}
	if ret.Kind == cinterp.ValInt && ret.I != 0 {
		return kern.Panic("busmouse: initialisation failed"), false
	}
	if !mouse.InterruptsEnabled() {
		kern.Printk("busmouse: warning: interrupts left disabled")
	}
	damaged := false
	var totalX, totalY int8
	for i, ev := range motionScript {
		mouse.Move(ev.dx, ev.dy)
		mouse.SetButtons(ev.buttons)
		totalX += int8(ev.dx)
		totalY += int8(ev.dy)
		v, err := in.Call("mouse_poll")
		if err != nil {
			return err, false
		}
		gotDx := int8(v.I)
		gotDy := int8(v.I >> 8)
		gotButtons := uint8(v.I>>16) & 0x07
		if gotDx != totalX || gotDy != totalY || gotButtons != ev.buttons {
			kern.Printk(fmt.Sprintf(
				"busmouse: event %d corrupt: got (%d,%d,%d), expected (%d,%d,%d)",
				i, gotDx, gotDy, gotButtons, totalX, totalY, ev.buttons))
			damaged = true
		}
	}
	kern.Printk("busmouse: event stream complete")
	return nil, damaged
}

// MouseMutation runs the driver-mutation experiment for a busmouse driver
// ("busmouse_c" or "busmouse_devil"). It is DriverMutation under a
// historical name: the campaign workload routes busmouse_* tasks to the
// mouse harness by driver name.
func MouseMutation(driver string, opts MutationOptions) (*DriverTable, error) {
	return DriverMutation(driver, opts)
}
