// Package cast defines the abstract syntax tree of hwC driver sources.
package cast

import (
	"repro/internal/cdriver/ctoken"
)

// TypeKind enumerates the C types of the subset.
type TypeKind int

// C types. DevilStruct covers the distinct struct types that Devil debug
// stubs generate for enumerated device variables (e.g. Drive_t).
const (
	TypeVoid TypeKind = iota + 1
	TypeInt           // int (signed 32-bit)
	TypeU8
	TypeU16
	TypeU32
	TypeS8
	TypeS16
	TypeS32
	TypeDevilStruct
)

// CType is a (possibly Devil) C type.
type CType struct {
	Kind TypeKind
	// Name is set for DevilStruct types (e.g. "Drive_t").
	Name string
}

// String renders the type.
func (t CType) String() string {
	switch t.Kind {
	case TypeVoid:
		return "void"
	case TypeInt:
		return "int"
	case TypeU8:
		return "u8"
	case TypeU16:
		return "u16"
	case TypeU32:
		return "u32"
	case TypeS8:
		return "s8"
	case TypeS16:
		return "s16"
	case TypeS32:
		return "s32"
	case TypeDevilStruct:
		return t.Name
	}
	return "?"
}

// IsInteger reports whether the type is an arithmetic integer type.
func (t CType) IsInteger() bool {
	return t.Kind >= TypeInt && t.Kind <= TypeS32
}

// Node is implemented by all AST nodes.
type Node interface {
	Pos() ctoken.Pos
}

// Decl is a file-scope declaration.
type Decl interface {
	Node
	declNode()
}

// MacroDecl is an object-like #define. The body is kept both as raw tokens
// (the representation the mutation engine rewrites) and as a parsed
// constant expression.
type MacroDecl struct {
	NamePos ctoken.Pos
	Name    string
	Body    Expr
}

// Pos implements Node.
func (d *MacroDecl) Pos() ctoken.Pos { return d.NamePos }
func (d *MacroDecl) declNode()       {}

// VarDecl is a file-scope or local variable declaration.
type VarDecl struct {
	TypePos ctoken.Pos
	Type    CType
	Name    string
	NamePos ctoken.Pos
	Init    Expr // may be nil
}

// Pos implements Node.
func (d *VarDecl) Pos() ctoken.Pos { return d.TypePos }
func (d *VarDecl) declNode()       {}

// Param is one function parameter.
type Param struct {
	Type    CType
	Name    string
	NamePos ctoken.Pos
}

// FuncDecl is a function definition.
type FuncDecl struct {
	TypePos ctoken.Pos
	Result  CType
	Name    string
	NamePos ctoken.Pos
	Params  []Param
	Body    *Block
}

// Pos implements Node.
func (d *FuncDecl) Pos() ctoken.Pos { return d.TypePos }
func (d *FuncDecl) declNode()       {}

// Program is one parsed source file.
type Program struct {
	Decls []Decl
}

// Macros returns the macro declarations in order.
func (p *Program) Macros() []*MacroDecl {
	var out []*MacroDecl
	for _, d := range p.Decls {
		if m, ok := d.(*MacroDecl); ok {
			out = append(out, m)
		}
	}
	return out
}

// Funcs returns the function definitions in order.
func (p *Program) Funcs() []*FuncDecl {
	var out []*FuncDecl
	for _, d := range p.Decls {
		if f, ok := d.(*FuncDecl); ok {
			out = append(out, f)
		}
	}
	return out
}

// Func looks a function up by name.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs() {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Stmt is a statement.
type Stmt interface {
	Node
	stmtNode()
}

// Block is a brace-delimited statement list.
type Block struct {
	LBrace ctoken.Pos
	Stmts  []Stmt
}

// Pos implements Node.
func (s *Block) Pos() ctoken.Pos { return s.LBrace }
func (s *Block) stmtNode()       {}

// DeclStmt is a local variable declaration.
type DeclStmt struct {
	Decl *VarDecl
}

// Pos implements Node.
func (s *DeclStmt) Pos() ctoken.Pos { return s.Decl.TypePos }
func (s *DeclStmt) stmtNode()       {}

// ExprStmt is an expression evaluated for effect (a call).
type ExprStmt struct {
	X Expr
}

// Pos implements Node.
func (s *ExprStmt) Pos() ctoken.Pos { return s.X.Pos() }
func (s *ExprStmt) stmtNode()       {}

// AssignStmt is "lhs op rhs" for = |= &= ^= <<= >>= += -=.
type AssignStmt struct {
	LHS *Ident
	Op  ctoken.Kind
	RHS Expr
}

// Pos implements Node.
func (s *AssignStmt) Pos() ctoken.Pos { return s.LHS.NamePos }
func (s *AssignStmt) stmtNode()       {}

// IncDecStmt is "x++" or "x--".
type IncDecStmt struct {
	X  *Ident
	Op ctoken.Kind
}

// Pos implements Node.
func (s *IncDecStmt) Pos() ctoken.Pos { return s.X.NamePos }
func (s *IncDecStmt) stmtNode()       {}

// IfStmt is a conditional.
type IfStmt struct {
	IfPos ctoken.Pos
	Cond  Expr
	Then  Stmt
	Else  Stmt // may be nil
}

// Pos implements Node.
func (s *IfStmt) Pos() ctoken.Pos { return s.IfPos }
func (s *IfStmt) stmtNode()       {}

// WhileStmt is a while loop.
type WhileStmt struct {
	WhilePos ctoken.Pos
	Cond     Expr
	Body     Stmt
}

// Pos implements Node.
func (s *WhileStmt) Pos() ctoken.Pos { return s.WhilePos }
func (s *WhileStmt) stmtNode()       {}

// DoWhileStmt is a do/while loop.
type DoWhileStmt struct {
	DoPos ctoken.Pos
	Body  Stmt
	Cond  Expr
}

// Pos implements Node.
func (s *DoWhileStmt) Pos() ctoken.Pos { return s.DoPos }
func (s *DoWhileStmt) stmtNode()       {}

// ForStmt is a for loop; any of Init, Cond, Post may be nil.
type ForStmt struct {
	ForPos ctoken.Pos
	Init   Stmt
	Cond   Expr
	Post   Stmt
	Body   Stmt
}

// Pos implements Node.
func (s *ForStmt) Pos() ctoken.Pos { return s.ForPos }
func (s *ForStmt) stmtNode()       {}

// CaseClause is one arm of a switch; Values is nil for default.
type CaseClause struct {
	CasePos ctoken.Pos
	Values  []Expr
	Stmts   []Stmt
}

// SwitchStmt is a switch with implicit break at clause end (the subset does
// not support fallthrough, which the driver corpus does not use).
type SwitchStmt struct {
	SwitchPos ctoken.Pos
	Tag       Expr
	Clauses   []*CaseClause
}

// Pos implements Node.
func (s *SwitchStmt) Pos() ctoken.Pos { return s.SwitchPos }
func (s *SwitchStmt) stmtNode()       {}

// BreakStmt exits the innermost loop or switch.
type BreakStmt struct {
	KwPos ctoken.Pos
}

// Pos implements Node.
func (s *BreakStmt) Pos() ctoken.Pos { return s.KwPos }
func (s *BreakStmt) stmtNode()       {}

// ContinueStmt restarts the innermost loop.
type ContinueStmt struct {
	KwPos ctoken.Pos
}

// Pos implements Node.
func (s *ContinueStmt) Pos() ctoken.Pos { return s.KwPos }
func (s *ContinueStmt) stmtNode()       {}

// ReturnStmt returns from the current function.
type ReturnStmt struct {
	KwPos ctoken.Pos
	X     Expr // may be nil
}

// Pos implements Node.
func (s *ReturnStmt) Pos() ctoken.Pos { return s.KwPos }
func (s *ReturnStmt) stmtNode()       {}

// Expr is an expression.
type Expr interface {
	Node
	exprNode()
}

// IntLit is an integer literal of any C base.
type IntLit struct {
	LitPos ctoken.Pos
	Value  int64
	// Base records the literal's base kind for diagnostics.
	Base ctoken.Kind
}

// Pos implements Node.
func (e *IntLit) Pos() ctoken.Pos { return e.LitPos }
func (e *IntLit) exprNode()       {}

// StringLit is a string literal (panic/printk arguments only).
type StringLit struct {
	LitPos ctoken.Pos
	Value  string
}

// Pos implements Node.
func (e *StringLit) Pos() ctoken.Pos { return e.LitPos }
func (e *StringLit) exprNode()       {}

// Ident references a macro, variable or enum constant.
type Ident struct {
	NamePos ctoken.Pos
	Name    string
}

// Pos implements Node.
func (e *Ident) Pos() ctoken.Pos { return e.NamePos }
func (e *Ident) exprNode()       {}

// CallExpr is a direct call to a named function, builtin or stub.
type CallExpr struct {
	NamePos ctoken.Pos
	Name    string
	Args    []Expr
}

// Pos implements Node.
func (e *CallExpr) Pos() ctoken.Pos { return e.NamePos }
func (e *CallExpr) exprNode()       {}

// UnaryExpr is !x, ~x or -x.
type UnaryExpr struct {
	OpPos ctoken.Pos
	Op    ctoken.Kind
	X     Expr
}

// Pos implements Node.
func (e *UnaryExpr) Pos() ctoken.Pos { return e.OpPos }
func (e *UnaryExpr) exprNode()       {}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	OpPos ctoken.Pos
	Op    ctoken.Kind
	X, Y  Expr
}

// Pos implements Node.
func (e *BinaryExpr) Pos() ctoken.Pos { return e.X.Pos() }
func (e *BinaryExpr) exprNode()       {}

// CondExpr is the ternary conditional.
type CondExpr struct {
	Cond, Then, Else Expr
}

// Pos implements Node.
func (e *CondExpr) Pos() ctoken.Pos { return e.Cond.Pos() }
func (e *CondExpr) exprNode()       {}

// CastExpr is "(type) x".
type CastExpr struct {
	LParen ctoken.Pos
	To     CType
	X      Expr
}

// Pos implements Node.
func (e *CastExpr) Pos() ctoken.Pos { return e.LParen }
func (e *CastExpr) exprNode()       {}
