// Quickstart: compile the paper's busmouse specification (Figure 3),
// generate debug stubs bound to a simulated Logitech busmouse, and read
// the mouse through the typed device variables — no port numbers, masks
// or shifts in sight.
package main

import (
	"fmt"
	"log"

	"repro/internal/devil"
	"repro/internal/hw"
	"repro/internal/hw/busmouse"
	"repro/internal/specs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Compile the specification. The Devil front end verifies all the
	// §2.2 consistency properties before anything is generated.
	src, err := specs.Load("busmouse")
	if err != nil {
		return err
	}
	spec, err := devil.Compile(src.Filename, src.Source)
	if err != nil {
		return err
	}
	fmt.Printf("compiled %s: device %s, %d registers, %d variables\n",
		src.Filename, spec.AST.Name, len(spec.AST.Registers()), len(spec.AST.Variables()))

	// 2. Assemble the hardware: one busmouse adapter at the PC's
	// conventional 0x23c base.
	bus := hw.NewBus()
	mouse := busmouse.New()
	const base = hw.Port(0x23c)
	if err := bus.Map(base, 4, mouse); err != nil {
		return err
	}

	// 3. Generate debug stubs bound to that bus.
	stubs, err := spec.Generate(devil.Config{
		Bus:   bus,
		Bases: map[string]hw.Port{"base": base},
		Mode:  devil.Debug,
	})
	if err != nil {
		return err
	}

	// 4. Configure the device through typed variables. CONFIGURATION and
	// ENABLE are typed constants; passing them to the wrong variable would
	// be caught — at compile time in CDevil, at run time here.
	cfg, _ := stubs.Const("CONFIGURATION")
	if err := stubs.Set("config", cfg); err != nil {
		return err
	}
	enable, _ := stubs.Const("ENABLE")
	if err := stubs.Set("interrupt", enable); err != nil {
		return err
	}

	// 5. Move the simulated mouse and read it back. The dx/dy stubs
	// assemble each value from two index-selected nibble registers; the
	// index pre-actions happen behind the scenes.
	mouse.Move(-3, 17)
	mouse.SetButtons(0b101)

	dx, err := stubs.Get("dx")
	if err != nil {
		return err
	}
	dy, err := stubs.Get("dy")
	if err != nil {
		return err
	}
	buttons, err := stubs.Get("buttons")
	if err != nil {
		return err
	}
	fmt.Printf("mouse state: dx=%d dy=%d buttons=%03b\n",
		int8(dx.Val), int8(dy.Val), buttons.Val)

	// 6. The stubs enforce the specification's access modes: config is
	// write-only, so reading it is rejected.
	if _, err := stubs.Get("config"); err != nil {
		fmt.Printf("reading the write-only config variable: %v\n", err)
	}
	return nil
}
