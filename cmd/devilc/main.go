// Command devilc is the Devil compiler front end: it checks a device
// specification for the consistency properties of §2.2 and emits the C
// stubs of §2.3 in production or debug mode.
//
// Usage:
//
//	devilc [-mode debug|production] [-var NAME] [-check] <spec>
//
// <spec> is either a path to a .dil file or the name of one of the
// embedded Table-2 specifications (busmouse, pci, ide, ne2000, permedia).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/devil"
	"repro/internal/specs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "devilc:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("devilc", flag.ContinueOnError)
	mode := fs.String("mode", "debug", "stub generation mode: debug or production")
	varName := fs.String("var", "", "emit stubs for a single device variable only")
	checkOnly := fs.Bool("check", false, "check the specification and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: devilc [-mode debug|production] [-var NAME] [-check] <spec>")
	}

	filename, source, err := loadSpec(fs.Arg(0))
	if err != nil {
		return err
	}
	spec, err := devil.Compile(filename, source)
	if err != nil {
		if ce, ok := err.(*devil.CompileError); ok {
			for _, e := range ce.All() {
				fmt.Fprintf(os.Stderr, "%s:%v\n", filename, e)
			}
			return fmt.Errorf("%d error(s)", len(ce.All()))
		}
		return err
	}
	fmt.Fprintf(os.Stderr, "devilc: %s: specification OK (%d registers, %d variables)\n",
		filename, len(spec.AST.Registers()), len(spec.AST.Variables()))
	if *checkOnly {
		return nil
	}

	genMode := devil.Debug
	switch *mode {
	case "debug":
	case "production":
		genMode = devil.Production
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	if *varName != "" {
		text, err := spec.EmitCVariable(genMode, *varName)
		if err != nil {
			return err
		}
		fmt.Print(text)
		return nil
	}
	fmt.Print(spec.EmitC(genMode))
	return nil
}

// loadSpec resolves a spec argument: embedded name or file path.
func loadSpec(arg string) (filename, source string, err error) {
	if !strings.ContainsAny(arg, "/.") {
		if s, err := specs.Load(arg); err == nil {
			return s.Filename, s.Source, nil
		}
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		return "", "", err
	}
	return arg, string(data), nil
}
