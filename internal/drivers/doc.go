// Package drivers embeds the hwC driver corpus of the evaluation: five
// traditional/CDevil pairs, one per Table-2 device — the PIIX4 IDE disk
// driver of Tables 3/4 (ide_c, ide_devil), the Logitech busmouse pair
// (busmouse_c, busmouse_devil), the NE2000 Ethernet pair (ne2000_c,
// ne2000_devil), the Permedia 2 frame-buffer pair (permedia_c,
// permedia_devil), and the 82371FB bus-master DMA pair (busmaster_c,
// busmaster_devil). Each _c source hand-codes the port protocol the
// matching _devil source delegates to generated stubs, and the //@hw
// markers bound the hardware operating code the mutation rules apply to.
package drivers
