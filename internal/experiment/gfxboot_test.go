package experiment

import (
	"testing"

	"repro/internal/drivers"
	"repro/internal/hw/permedia"
	"repro/internal/kernel"
)

// TestCleanGfxBoot: both Permedia drivers must compile, bring the chip
// up, feed the whole render script and finish the DMA transfer with
// every audit check green.
func TestCleanGfxBoot(t *testing.T) {
	for _, name := range []string{"permedia_c", "permedia_devil"} {
		t.Run(name, func(t *testing.T) {
			src, err := drivers.Load(name)
			if err != nil {
				t.Fatal(err)
			}
			toks, err := ParseDriver(src.Text)
			if err != nil {
				t.Fatal(err)
			}
			res, err := BootDriver(name, BootInput{Tokens: toks, Devil: src.Devil})
			if err != nil {
				t.Fatal(err)
			}
			if res.CompileDetected() {
				for _, e := range res.CompileErrors {
					t.Errorf("  compile: %v", e)
				}
				t.Fatal("clean driver failed to compile")
			}
			if res.Outcome != kernel.OutcomeBoot {
				t.Errorf("outcome = %v (%v)", res.Outcome, res.RunErr)
				for _, line := range res.Console {
					t.Logf("console: %s", line)
				}
			}
			t.Logf("%s: %d steps", name, res.Steps)
		})
	}
}

// TestGfxRigResetRestoresCleanBoot: after a boot that filled the FIFO,
// programmed the timing generator and latched interrupts, Reset must
// return the rig to a state where the clean driver boots cleanly — the
// rig-reuse guarantee campaign workers depend on.
func TestGfxRigResetRestoresCleanBoot(t *testing.T) {
	assertResetRestoresCleanBoot(t, "permedia_c", nil, func(t *testing.T, m *Rig) {
		gpu := m.Dev.(*permedia.GPU)
		if gpu.Drained() != 0 || gpu.VideoEnabled() || gpu.IntFlags() != 0 {
			t.Fatalf("GPU state survived Reset: drained=%d video=%v flags=%#x",
				gpu.Drained(), gpu.VideoEnabled(), gpu.IntFlags())
		}
	})
}

// TestGfxMutationSmoke runs a sampled Permedia mutation experiment and
// checks the Devil-vs-C shape carries over to the fourth driver pair.
func TestGfxMutationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("mutation smoke test is not short")
	}
	opts := MutationOptions{SamplePct: 10, Seed: 7}
	c, err := DriverMutation("permedia_c", opts)
	if err != nil {
		t.Fatal(err)
	}
	d, err := DriverMutation("permedia_devil", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s\n%s",
		FormatDriverTable(c, "Extension: mutations on the C Permedia driver"),
		FormatDriverTable(d, "Extension: mutations on the CDevil Permedia driver"))
	if d.DetectedPct() <= c.DetectedPct() {
		t.Errorf("Devil detection (%.1f%%) should exceed C (%.1f%%)",
			d.DetectedPct(), c.DetectedPct())
	}
	if d.Counts[RowRuntime] == 0 {
		t.Error("CDevil driver produced no run-time checks")
	}
}
