// Package parser implements a recursive-descent parser for the Devil
// interface definition language.
//
// The accepted grammar covers the published language fragment:
//
//	device      = "device" ident "(" param { "," param } ")" "{" { decl } "}"
//	param       = ident ":" "bit" "[" int "]" "port" "@" "{" int ".." int "}"
//	decl        = register | variable
//	register    = "register" ident "=" portspec { "," rattr } [ ":" "bit" "[" int "]" ] ";"
//	portspec    = [ "read" | "write" ] portref [ ( "read" | "write" ) portref ]
//	portref     = ident "@" int
//	rattr       = "mask" bitpattern | "pre" "{" preact { ";" preact } "}"
//	            | ( "read" | "write" ) portref
//	preact      = ident "=" int
//	variable    = [ "private" ] "variable" ident "=" frag { "#" frag }
//	              { "," vattr } ":" type ";"
//	frag        = ident [ "[" int [ ".." int ] "]" ]
//	vattr       = "volatile" | "write" "trigger"
//	type        = [ "signed" ] "int" "(" int ")"
//	            | "int" "{" intitem { "," intitem } "}"
//	            | "bool"
//	            | "{" enumcase { "," enumcase } "}"
//	intitem     = int [ ".." int ]
//	enumcase    = ident ( "=>" | "<=" | "<=>" ) bitstring
//
// Errors are accumulated rather than fatal; the parser recovers at the next
// semicolon so a mutated specification always yields a diagnostic rather
// than a panic.
package parser

import (
	"fmt"
	"strconv"

	"repro/internal/devil/ast"
	"repro/internal/devil/scanner"
	"repro/internal/devil/token"
)

// Error is a syntax diagnostic.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: syntax error: %s", e.Pos, e.Msg) }

// ErrorList is the ordered set of diagnostics from one parse.
type ErrorList []*Error

// Error implements the error interface, summarising the first diagnostic.
func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", l[0].Error(), len(l)-1)
}

// Err returns the list as an error, or nil when empty.
func (l ErrorList) Err() error {
	if len(l) == 0 {
		return nil
	}
	return l
}

type parser struct {
	toks   []token.Token
	idx    int
	errors ErrorList
}

// Parse parses a complete Devil specification.
func Parse(src string) (*ast.Device, ErrorList) {
	toks, lexErrs := scanner.ScanAll(src)
	p := &parser{toks: toks}
	for _, e := range lexErrs {
		p.errors = append(p.errors, &Error{Pos: e.Pos, Msg: e.Msg})
	}
	dev := p.parseDevice()
	return dev, p.errors
}

func (p *parser) cur() token.Token {
	if p.idx >= len(p.toks) {
		var pos token.Pos
		if len(p.toks) > 0 {
			pos = p.toks[len(p.toks)-1].Pos
		} else {
			pos = token.Pos{Line: 1, Col: 1}
		}
		return token.Token{Kind: token.EOF, Pos: pos}
	}
	return p.toks[p.idx]
}

func (p *parser) next() token.Token {
	t := p.cur()
	if t.Kind != token.EOF {
		p.idx++
	}
	return t
}

func (p *parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *parser) accept(k token.Kind) (token.Token, bool) {
	if p.at(k) {
		return p.next(), true
	}
	return token.Token{}, false
}

func (p *parser) expect(k token.Kind) token.Token {
	if p.at(k) {
		return p.next()
	}
	t := p.cur()
	p.errorf(t.Pos, "expected %s, found %s", k, t)
	return token.Token{Kind: k, Pos: t.Pos}
}

func (p *parser) errorf(pos token.Pos, format string, args ...interface{}) {
	p.errors = append(p.errors, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// syncDecl skips tokens until just past the next semicolon or to a closing
// brace / EOF, so one malformed declaration does not cascade.
func (p *parser) syncDecl() {
	for {
		switch p.cur().Kind {
		case token.EOF, token.RBrace:
			return
		case token.Semi:
			p.next()
			return
		}
		p.next()
	}
}

func (p *parser) parseInt() (int64, token.Pos) {
	t := p.cur()
	switch t.Kind {
	case token.Int:
		p.next()
		v, err := strconv.ParseInt(t.Lit, 10, 64)
		if err != nil {
			p.errorf(t.Pos, "invalid integer literal %q", t.Lit)
		}
		return v, t.Pos
	case token.HexInt:
		p.next()
		v, err := strconv.ParseInt(t.Lit[2:], 16, 64)
		if err != nil {
			p.errorf(t.Pos, "invalid hexadecimal literal %q", t.Lit)
		}
		return v, t.Pos
	default:
		p.errorf(t.Pos, "expected integer, found %s", t)
		p.next()
		return 0, t.Pos
	}
}

func (p *parser) parseDevice() *ast.Device {
	p.expect(token.KwDevice)
	name := p.expect(token.Ident)
	dev := &ast.Device{NamePos: name.Pos, Name: name.Lit}

	p.expect(token.LParen)
	if !p.at(token.RParen) {
		dev.Params = append(dev.Params, p.parsePortParam())
		for p.at(token.Comma) {
			p.next()
			dev.Params = append(dev.Params, p.parsePortParam())
		}
	}
	p.expect(token.RParen)

	p.expect(token.LBrace)
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		before := p.idx
		switch p.cur().Kind {
		case token.KwRegister:
			if r := p.parseRegister(); r != nil {
				dev.Decls = append(dev.Decls, r)
			}
		case token.KwVariable, token.KwPrivate:
			if v := p.parseVariable(); v != nil {
				dev.Decls = append(dev.Decls, v)
			}
		default:
			t := p.cur()
			p.errorf(t.Pos, "expected declaration, found %s", t)
			p.syncDecl()
		}
		if p.idx == before { // no progress; avoid livelock on garbage
			p.next()
		}
	}
	p.expect(token.RBrace)
	if !p.at(token.EOF) {
		p.errorf(p.cur().Pos, "unexpected %s after device body", p.cur())
	}
	return dev
}

// parsePortParam parses "base : bit[8] port @ {0..3}".
func (p *parser) parsePortParam() *ast.PortParam {
	name := p.expect(token.Ident)
	param := &ast.PortParam{NamePos: name.Pos, Name: name.Lit}
	p.expect(token.Colon)
	p.expect(token.KwBit)
	p.expect(token.LBracket)
	bits, _ := p.parseInt()
	param.DataBits = int(bits)
	p.expect(token.RBracket)
	p.expect(token.KwPort)
	p.expect(token.At)
	p.expect(token.LBrace)
	lo, _ := p.parseInt()
	param.RangeLo = lo
	p.expect(token.DotDot)
	hi, _ := p.parseInt()
	param.RangeHi = hi
	p.expect(token.RBrace)
	return param
}

// parsePortRef parses "base @ 3".
func (p *parser) parsePortRef() *ast.PortRef {
	name := p.expect(token.Ident)
	p.expect(token.At)
	off, _ := p.parseInt()
	return &ast.PortRef{NamePos: name.Pos, Name: name.Lit, Offset: off}
}

func (p *parser) parseRegister() *ast.Register {
	kw := p.expect(token.KwRegister)
	name := p.expect(token.Ident)
	reg := &ast.Register{DeclPos: kw.Pos, NamePos: name.Pos, Name: name.Lit, Size: 8}
	p.expect(token.Assign)

	// First port specification: optional read/write qualifier + portref.
	switch {
	case p.at(token.KwRead):
		p.next()
		reg.Mode = ast.ReadOnly
		reg.ReadPort = p.parsePortRef()
	case p.at(token.KwWrite):
		p.next()
		reg.Mode = ast.WriteOnly
		reg.WritePort = p.parsePortRef()
	default:
		reg.Mode = ast.ReadWrite
		pr := p.parsePortRef()
		reg.ReadPort = pr
		reg.WritePort = pr
	}

	// Attribute list.
	for p.at(token.Comma) {
		p.next()
		switch p.cur().Kind {
		case token.KwMask:
			m := p.next()
			pat := p.cur()
			if pat.Kind == token.BitPattern || pat.Kind == token.BitString {
				p.next()
				reg.Mask = pat.Lit
				reg.MaskPos = pat.Pos
			} else {
				p.errorf(pat.Pos, "expected bit pattern after mask, found %s", pat)
			}
			_ = m
		case token.KwPre:
			p.next()
			p.expect(token.LBrace)
			for {
				v := p.expect(token.Ident)
				p.expect(token.Assign)
				val, _ := p.parseInt()
				reg.Pre = append(reg.Pre, &ast.PreAction{VarPos: v.Pos, Var: v.Lit, Value: val})
				if _, ok := p.accept(token.Semi); ok && !p.at(token.RBrace) {
					continue
				}
				break
			}
			p.expect(token.RBrace)
		case token.KwRead:
			p.next()
			pr := p.parsePortRef()
			if reg.ReadPort != nil && reg.Mode != ast.WriteOnly {
				p.errorf(pr.NamePos, "register %s: duplicate read port", reg.Name)
			}
			reg.ReadPort = pr
			reg.Mode = combineMode(reg.Mode, ast.ReadOnly)
		case token.KwWrite:
			p.next()
			pr := p.parsePortRef()
			if reg.WritePort != nil && reg.Mode != ast.ReadOnly {
				p.errorf(pr.NamePos, "register %s: duplicate write port", reg.Name)
			}
			reg.WritePort = pr
			reg.Mode = combineMode(reg.Mode, ast.WriteOnly)
		default:
			t := p.cur()
			p.errorf(t.Pos, "expected register attribute, found %s", t)
			p.syncDecl()
			return reg
		}
	}

	// Optional size annotation ": bit[n]".
	if _, ok := p.accept(token.Colon); ok {
		p.expect(token.KwBit)
		p.expect(token.LBracket)
		bits, _ := p.parseInt()
		reg.Size = int(bits)
		p.expect(token.RBracket)
	} else if reg.Mask != "" {
		reg.Size = len(reg.Mask)
	}
	p.expect(token.Semi)
	return reg
}

// combineMode merges a second port qualifier into the register mode: a
// read-only register gaining a write port (or vice versa) becomes
// read/write through distinct ports.
func combineMode(have ast.Access, add ast.Access) ast.Access {
	if have == add {
		return have
	}
	return ast.ReadWrite
}

func (p *parser) parseVariable() *ast.Variable {
	start := p.cur()
	v := &ast.Variable{DeclPos: start.Pos}
	if _, ok := p.accept(token.KwPrivate); ok {
		v.Private = true
	}
	p.expect(token.KwVariable)
	name := p.expect(token.Ident)
	v.NamePos = name.Pos
	v.Name = name.Lit
	p.expect(token.Assign)

	v.Fragments = append(v.Fragments, p.parseFragment())
	for p.at(token.Hash) {
		p.next()
		v.Fragments = append(v.Fragments, p.parseFragment())
	}

	for p.at(token.Comma) {
		p.next()
		switch p.cur().Kind {
		case token.KwVolatile:
			p.next()
			v.Volatile = true
		case token.KwWrite:
			p.next()
			p.expect(token.KwTrigger)
			v.WriteTrigger = true
		default:
			t := p.cur()
			p.errorf(t.Pos, "expected variable attribute, found %s", t)
			p.syncDecl()
			return v
		}
	}

	p.expect(token.Colon)
	v.Type = p.parseType()
	p.expect(token.Semi)
	return v
}

// parseFragment parses "reg", "reg[i]" or "reg[hi..lo]".
func (p *parser) parseFragment() *ast.Fragment {
	name := p.expect(token.Ident)
	f := &ast.Fragment{RegPos: name.Pos, Reg: name.Lit, Hi: -1, Lo: -1}
	if _, ok := p.accept(token.LBracket); ok {
		hi, _ := p.parseInt()
		f.Hi = int(hi)
		f.Lo = int(hi)
		if _, ok := p.accept(token.DotDot); ok {
			lo, _ := p.parseInt()
			f.Lo = int(lo)
		}
		p.expect(token.RBracket)
	}
	return f
}

func (p *parser) parseType() *ast.TypeExpr {
	t := p.cur()
	switch t.Kind {
	case token.KwBool:
		p.next()
		return &ast.TypeExpr{TypePos: t.Pos, Kind: ast.TypeBool}
	case token.KwSigned:
		p.next()
		p.expect(token.KwInt)
		p.expect(token.LParen)
		bits, _ := p.parseInt()
		p.expect(token.RParen)
		return &ast.TypeExpr{TypePos: t.Pos, Kind: ast.TypeInt, Signed: true, Bits: int(bits)}
	case token.KwInt:
		p.next()
		if _, ok := p.accept(token.LParen); ok {
			bits, _ := p.parseInt()
			p.expect(token.RParen)
			return &ast.TypeExpr{TypePos: t.Pos, Kind: ast.TypeInt, Bits: int(bits)}
		}
		p.expect(token.LBrace)
		te := &ast.TypeExpr{TypePos: t.Pos, Kind: ast.TypeIntSet}
		for {
			lo, pos := p.parseInt()
			if _, ok := p.accept(token.DotDot); ok {
				hi, _ := p.parseInt()
				if hi < lo {
					p.errorf(pos, "empty integer range %d..%d", lo, hi)
				}
				for v := lo; v <= hi; v++ {
					te.Set = append(te.Set, v)
				}
			} else {
				te.Set = append(te.Set, lo)
			}
			if _, ok := p.accept(token.Comma); !ok {
				break
			}
		}
		p.expect(token.RBrace)
		return te
	case token.LBrace:
		p.next()
		te := &ast.TypeExpr{TypePos: t.Pos, Kind: ast.TypeEnum}
		for {
			name := p.expect(token.Ident)
			dir := p.cur()
			switch dir.Kind {
			case token.MapTo, token.MapFrom, token.MapBoth:
				p.next()
			default:
				p.errorf(dir.Pos, "expected =>, <= or <=> in enum case, found %s", dir)
			}
			pat := p.cur()
			var pattern string
			if pat.Kind == token.BitString || pat.Kind == token.BitPattern {
				p.next()
				pattern = pat.Lit
			} else {
				p.errorf(pat.Pos, "expected bit pattern in enum case, found %s", pat)
			}
			te.Cases = append(te.Cases, &ast.EnumCase{
				NamePos: name.Pos, Name: name.Lit, Dir: dir.Kind,
				Pattern: pattern, PatPos: pat.Pos,
			})
			if _, ok := p.accept(token.Comma); !ok {
				break
			}
		}
		p.expect(token.RBrace)
		return te
	default:
		p.errorf(t.Pos, "expected type expression, found %s", t)
		p.next()
		return &ast.TypeExpr{TypePos: t.Pos, Kind: ast.TypeInt, Bits: 8}
	}
}
