package cincr

import (
	"fmt"
	"strings"

	"repro/internal/cdriver/cast"
	"repro/internal/cdriver/ctoken"
)

// dumpProgram renders a program as a deterministic S-expression with
// every position, so two programs dump identically exactly when the
// parser produced structurally identical trees — the equality the
// incremental-vs-full tests assert.
func dumpProgram(p *cast.Program) string {
	var b strings.Builder
	for _, d := range p.Decls {
		dumpDecl(&b, d)
		b.WriteByte('\n')
	}
	return b.String()
}

func pos(b *strings.Builder, p ctoken.Pos) {
	fmt.Fprintf(b, "@%d:%d:%d", p.Offset, p.Line, p.Col)
}

func dumpDecl(b *strings.Builder, d cast.Decl) {
	switch d := d.(type) {
	case *cast.MacroDecl:
		fmt.Fprintf(b, "(macro %s", d.Name)
		pos(b, d.NamePos)
		b.WriteByte(' ')
		dumpExpr(b, d.Body)
		b.WriteByte(')')
	case *cast.VarDecl:
		fmt.Fprintf(b, "(var %s %s", d.Type, d.Name)
		pos(b, d.TypePos)
		pos(b, d.NamePos)
		if d.Init != nil {
			b.WriteByte(' ')
			dumpExpr(b, d.Init)
		}
		b.WriteByte(')')
	case *cast.FuncDecl:
		fmt.Fprintf(b, "(func %s %s", d.Result, d.Name)
		pos(b, d.TypePos)
		pos(b, d.NamePos)
		for _, p := range d.Params {
			fmt.Fprintf(b, " (param %s %s", p.Type, p.Name)
			pos(b, p.NamePos)
			b.WriteByte(')')
		}
		b.WriteByte(' ')
		dumpStmt(b, d.Body)
		b.WriteByte(')')
	default:
		fmt.Fprintf(b, "(unknown-decl %T)", d)
	}
}

func dumpStmt(b *strings.Builder, s cast.Stmt) {
	switch s := s.(type) {
	case nil:
		b.WriteString("(nil)")
	case *cast.Block:
		b.WriteString("(block")
		pos(b, s.LBrace)
		for _, st := range s.Stmts {
			b.WriteByte(' ')
			dumpStmt(b, st)
		}
		b.WriteByte(')')
	case *cast.DeclStmt:
		b.WriteString("(decl ")
		dumpDecl(b, s.Decl)
		b.WriteByte(')')
	case *cast.ExprStmt:
		b.WriteString("(expr ")
		dumpExpr(b, s.X)
		b.WriteByte(')')
	case *cast.AssignStmt:
		fmt.Fprintf(b, "(assign %s ", s.Op)
		dumpExpr(b, s.LHS)
		b.WriteByte(' ')
		dumpExpr(b, s.RHS)
		b.WriteByte(')')
	case *cast.IncDecStmt:
		fmt.Fprintf(b, "(incdec %s ", s.Op)
		dumpExpr(b, s.X)
		b.WriteByte(')')
	case *cast.IfStmt:
		b.WriteString("(if")
		pos(b, s.IfPos)
		b.WriteByte(' ')
		dumpExpr(b, s.Cond)
		b.WriteByte(' ')
		dumpStmt(b, s.Then)
		if s.Else != nil {
			b.WriteByte(' ')
			dumpStmt(b, s.Else)
		}
		b.WriteByte(')')
	case *cast.WhileStmt:
		b.WriteString("(while")
		pos(b, s.WhilePos)
		b.WriteByte(' ')
		dumpExpr(b, s.Cond)
		b.WriteByte(' ')
		dumpStmt(b, s.Body)
		b.WriteByte(')')
	case *cast.DoWhileStmt:
		b.WriteString("(do")
		pos(b, s.DoPos)
		b.WriteByte(' ')
		dumpStmt(b, s.Body)
		b.WriteByte(' ')
		dumpExpr(b, s.Cond)
		b.WriteByte(')')
	case *cast.ForStmt:
		b.WriteString("(for")
		pos(b, s.ForPos)
		b.WriteByte(' ')
		dumpStmt(b, s.Init)
		b.WriteByte(' ')
		if s.Cond != nil {
			dumpExpr(b, s.Cond)
		} else {
			b.WriteString("(nil)")
		}
		b.WriteByte(' ')
		dumpStmt(b, s.Post)
		b.WriteByte(' ')
		dumpStmt(b, s.Body)
		b.WriteByte(')')
	case *cast.SwitchStmt:
		b.WriteString("(switch")
		pos(b, s.SwitchPos)
		b.WriteByte(' ')
		dumpExpr(b, s.Tag)
		for _, cl := range s.Clauses {
			b.WriteString(" (case")
			pos(b, cl.CasePos)
			for _, v := range cl.Values {
				b.WriteByte(' ')
				dumpExpr(b, v)
			}
			for _, st := range cl.Stmts {
				b.WriteByte(' ')
				dumpStmt(b, st)
			}
			b.WriteByte(')')
		}
		b.WriteByte(')')
	case *cast.BreakStmt:
		b.WriteString("(break")
		pos(b, s.KwPos)
		b.WriteByte(')')
	case *cast.ContinueStmt:
		b.WriteString("(continue")
		pos(b, s.KwPos)
		b.WriteByte(')')
	case *cast.ReturnStmt:
		b.WriteString("(return")
		pos(b, s.KwPos)
		if s.X != nil {
			b.WriteByte(' ')
			dumpExpr(b, s.X)
		}
		b.WriteByte(')')
	default:
		fmt.Fprintf(b, "(unknown-stmt %T)", s)
	}
}

func dumpExpr(b *strings.Builder, x cast.Expr) {
	switch x := x.(type) {
	case *cast.IntLit:
		fmt.Fprintf(b, "(int %d %s", x.Value, x.Base)
		pos(b, x.LitPos)
		b.WriteByte(')')
	case *cast.StringLit:
		fmt.Fprintf(b, "(string %q", x.Value)
		pos(b, x.LitPos)
		b.WriteByte(')')
	case *cast.Ident:
		fmt.Fprintf(b, "(ident %s", x.Name)
		pos(b, x.NamePos)
		b.WriteByte(')')
	case *cast.CallExpr:
		fmt.Fprintf(b, "(call %s", x.Name)
		pos(b, x.NamePos)
		for _, a := range x.Args {
			b.WriteByte(' ')
			dumpExpr(b, a)
		}
		b.WriteByte(')')
	case *cast.UnaryExpr:
		fmt.Fprintf(b, "(unary %s", x.Op)
		pos(b, x.OpPos)
		b.WriteByte(' ')
		dumpExpr(b, x.X)
		b.WriteByte(')')
	case *cast.BinaryExpr:
		fmt.Fprintf(b, "(binary %s", x.Op)
		pos(b, x.OpPos)
		b.WriteByte(' ')
		dumpExpr(b, x.X)
		b.WriteByte(' ')
		dumpExpr(b, x.Y)
		b.WriteByte(')')
	case *cast.CondExpr:
		b.WriteString("(cond ")
		dumpExpr(b, x.Cond)
		b.WriteByte(' ')
		dumpExpr(b, x.Then)
		b.WriteByte(' ')
		dumpExpr(b, x.Else)
		b.WriteByte(')')
	case *cast.CastExpr:
		fmt.Fprintf(b, "(cast %s", x.To)
		pos(b, x.LParen)
		b.WriteByte(' ')
		dumpExpr(b, x.X)
		b.WriteByte(')')
	default:
		fmt.Fprintf(b, "(unknown-expr %T)", x)
	}
}
