package experiment

import (
	"testing"

	"repro/internal/specs"
)

// TestTable2Busmouse runs the spec-mutation experiment on the smallest
// corpus member and checks the headline shape: the Devil compiler catches
// the overwhelming majority of injected errors (paper: 88.8%–95.4%).
func TestTable2Busmouse(t *testing.T) {
	s, err := specs.Load("busmouse")
	if err != nil {
		t.Fatal(err)
	}
	row, err := Table2Row(s)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("busmouse: %d lines, %d sites, %d mutants, %.1f%% detected",
		row.Lines, row.Sites, row.Mutants, row.PctDetected())
	if row.Mutants < 100 {
		t.Errorf("suspiciously few mutants: %d", row.Mutants)
	}
	if pct := row.PctDetected(); pct < 70 || pct > 100 {
		t.Errorf("detection %.1f%% outside plausible range", pct)
	}
}

// TestDriverMutationSmoke boots a small sample of both drivers' mutants
// and checks the paper's headline shape: the Devil driver detects roughly
// 3× more mutants than the C driver, and boots silently far less often.
func TestDriverMutationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("mutation smoke test is not short")
	}
	opts := MutationOptions{SamplePct: 5, Seed: 42}
	c, err := Table3(opts)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Table4(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s\n%s",
		FormatDriverTable(c, "Table 3: Mutations on C code"),
		FormatDriverTable(d, "Table 4: Mutations on CDevil code"))
	if d.DetectedPct() <= c.DetectedPct() {
		t.Errorf("Devil detection (%.1f%%) should exceed C detection (%.1f%%)",
			d.DetectedPct(), c.DetectedPct())
	}
	if d.SilentPct() >= c.SilentPct() {
		t.Errorf("Devil silent boots (%.1f%%) should be below C (%.1f%%)",
			d.SilentPct(), c.SilentPct())
	}
}
