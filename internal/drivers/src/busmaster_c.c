/*
 * busmaster_c.c — traditional hand-written 82371FB (PIIX) bus-master
 * DMA driver, the paper's IDE workload extended from word-at-a-time PIO
 * to physical-region-descriptor transfers.
 *
 * Everything the Devil re-engineering derives from the specification is
 * spelled out by hand here: the command/status/descriptor port layout,
 * the start and direction bits sharing one command byte, and the
 * write-1-to-clear interrupt and error latches sharing the status byte
 * with the read/write drive-capability bits.
 */

//@hw
#define BM_CMD     0xc000
#define BM_STAT    0xc002
#define BM_PRDT    0xc004

#define BM_START   0x01
#define BM_RDMODE  0x08

#define BM_ACTIVE  0x01
#define BM_ERR     0x02
#define BM_IRQ     0x04
#define BM_CAP     0x60

#define BM_TIMEOUT 20000
//@endhw

/* Bounded wait for the completion interrupt. */
static int bm_wait(void)
{
    int t;
    //@hw
    for (t = 0; t < BM_TIMEOUT; t++) {
        if (inb(BM_STAT) & BM_IRQ) {
            return 0;
        }
    }
    //@endhw
    return 1;
}

int bm_init(void)
{
    //@hw
    if ((inb(BM_STAT) & BM_CAP) == 0) {
        printk("piix: no DMA-capable drive");
        return 1;
    }
    outb(BM_IRQ | BM_ERR | BM_CAP, BM_STAT);
    outb(0, BM_CMD);
    //@endhw
    printk("piix: bus master ready");
    return 0;
}

/* Run one PRD-table transfer: program the descriptor base, set the
 * direction, start the engine, wait for completion, stop and
 * acknowledge. dir is 1 for a read to memory. */
int bm_transfer(int addr, int dir)
{
    int status;
    //@hw
    outl(addr, BM_PRDT);
    if (dir) {
        outb(BM_RDMODE, BM_CMD);
        outb(BM_RDMODE | BM_START, BM_CMD);
    } else {
        outb(0, BM_CMD);
        outb(BM_START, BM_CMD);
    }
    if (bm_wait()) {
        outb(0, BM_CMD);
        printk("piix: transfer timeout");
        return 1;
    }
    status = inb(BM_STAT);
    outb(0, BM_CMD);
    outb(BM_IRQ | BM_CAP, BM_STAT);
    if (status & BM_ERR) {
        outb(BM_ERR | BM_CAP, BM_STAT);
        printk("piix: dma error");
        return 1;
    }
    //@endhw
    return 0;
}
