package experiment

import (
	"fmt"

	"repro/internal/cdriver/cinterp"
	"repro/internal/hw"
	"repro/internal/hw/busmouse"
)

// The busmouse experiment extends the paper's evaluation to a second
// driver pair — §4.2 notes the authors were "currently evaluating the
// robustness of Devil over several other Linux drivers". The boot here is
// the mouse's: probe via the signature register, configure, then sample a
// fixed motion script; an event stream that differs from the script is
// visible damage (a wild cursor).

const mouseBase hw.Port = 0x23c

// motionScript is the deterministic input the simulated user provides.
var motionScript = []struct {
	dx, dy  int
	buttons uint8
}{
	{1, 0, 0}, {3, -2, 0}, {-4, 5, 1}, {0, 0, 5},
	{2, 2, 4}, {-1, -3, 0}, {5, 1, 2}, {-2, 4, 0},
}

var mouseWorkload = WorkloadDesc{
	Name:    "busmouse",
	Drivers: []string{"busmouse_c", "busmouse_devil"},
	Spec:    "busmouse",
	Bases:   map[string]hw.Port{"base": mouseBase},
	Build: func(r *Rig) (any, error) {
		mouse := busmouse.New()
		if err := r.Bus.Map(mouseBase, 4, mouse); err != nil {
			return nil, err
		}
		return mouse, nil
	},
	Reset: func(dev any) { dev.(*busmouse.Mouse).Reset() },
	Snapshot: func(dev, snap any) any {
		s, _ := snap.(*busmouse.State)
		if s == nil {
			s = &busmouse.State{}
		}
		dev.(*busmouse.Mouse).Snapshot(s)
		return s
	},
	Restore: func(dev, snap any) { dev.(*busmouse.Mouse).Restore(snap.(*busmouse.State)) },
	Run:     runMouseBoot,
}

// runMouseBoot initialises the driver, feeds the motion script and checks
// the event stream. The mouse counters accumulate, so the harness compares
// cumulative positions.
func runMouseBoot(r *Rig, ex Engine, res *BootResult) (error, bool) {
	kern, mouse := r.Kern, r.Dev.(*busmouse.Mouse)
	ret, err := ex.Call("mouse_init")
	if err != nil {
		return err, false
	}
	if ret.Kind == cinterp.ValInt && ret.I != 0 {
		return kern.Panic("busmouse: initialisation failed"), false
	}
	if !mouse.InterruptsEnabled() {
		kern.Printk("busmouse: warning: interrupts left disabled")
	}
	damaged := false
	var totalX, totalY int8
	for i, ev := range motionScript {
		mouse.Move(ev.dx, ev.dy)
		mouse.SetButtons(ev.buttons)
		totalX += int8(ev.dx)
		totalY += int8(ev.dy)
		v, err := ex.Call("mouse_poll")
		if err != nil {
			return err, false
		}
		gotDx := int8(v.I)
		gotDy := int8(v.I >> 8)
		gotButtons := uint8(v.I>>16) & 0x07
		if gotDx != totalX || gotDy != totalY || gotButtons != ev.buttons {
			kern.Printk(fmt.Sprintf(
				"busmouse: event %d corrupt: got (%d,%d,%d), expected (%d,%d,%d)",
				i, gotDx, gotDy, gotButtons, totalX, totalY, ev.buttons))
			damaged = true
		}
	}
	kern.Printk("busmouse: event stream complete")
	return nil, damaged
}

// BootMouse compiles and boots one busmouse driver build on a freshly
// built rig. A compatibility wrapper over the generic BootDriver path.
func BootMouse(input BootInput) (*BootResult, error) {
	return BootDriver("busmouse_c", input)
}

// BootMouseOn compiles and boots one busmouse driver build on m, which
// must be a busmouse rig, freshly built or Reset. A compatibility
// wrapper over the generic BootOn path.
func BootMouseOn(m *Rig, input BootInput) (*BootResult, error) {
	return BootOn(m, input)
}

// MouseMutation runs the driver-mutation experiment for a busmouse driver
// ("busmouse_c" or "busmouse_devil"). It is DriverMutation under a
// historical name: the workload registry routes busmouse_* tasks to the
// mouse rig by driver name.
func MouseMutation(driver string, opts MutationOptions) (*DriverTable, error) {
	return DriverMutation(driver, opts)
}
